#include "core/retry.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "mathx/contracts.hpp"

namespace chronos::core {

namespace {

/// Exponential backoff before retry `attempt` (>= 1). Wall-clock only —
/// throttles live backends between attempts, never feeds a result.
/// lint:allow(nondeterminism)
void backoff_before(const chronos::RetryPolicy& policy, int attempt) {
  if (policy.backoff_s <= 0.0) return;
  const double seconds =
      policy.backoff_s * static_cast<double>(1 << (attempt - 1));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

RangingResult range_attempt(const SweepSource& source,
                            const RangingPipeline& pipeline,
                            const CalibrationTable& calibration,
                            const ResolvedRequest& request,
                            mathx::Rng& attempt_rng) {
  auto sweep = source.sweep_for(request, attempt_rng);
  if (!sweep.ok()) {
    RangingResult result;
    result.status = sweep.status();
    return result;
  }
  return pipeline.estimate(sweep.value(), calibration);
}

RangingResult finish_with_retries(const SweepSource& source,
                                  const RangingPipeline& pipeline,
                                  const CalibrationTable& calibration,
                                  const ResolvedRequest& request,
                                  const mathx::Rng& ticket_stream,
                                  RangingResult first_attempt,
                                  const chronos::RetryPolicy& policy) {
  CHRONOS_EXPECTS(policy.max_attempts >= 1,
                  "RetryPolicy::max_attempts must be >= 1");
  // The attempt ladder splits ticket_stream on kRetryStreamTag + a; the
  // registry (mathx/stream_tags.hpp) reserves exactly kMaxRetryAttempts
  // offsets for it, so stepping further could alias another tag's stream.
  CHRONOS_EXPECTS(policy.max_attempts <= chronos::kMaxRetryAttempts,
                  "RetryPolicy::max_attempts exceeds the retry stream-tag "
                  "range (mathx/stream_tags.hpp)");
  RangingResult result = std::move(first_attempt);
  result.attempts = 1;
  if (policy.max_attempts == 1) return result;  // pre-retry behaviour

  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    if (result.status.ok() || !chronos::retryable(result.status.code())) {
      return result;
    }
    backoff_before(policy, attempt);
    mathx::Rng attempt_rng = ticket_stream.split(
        kRetryStreamTag + static_cast<std::uint64_t>(attempt));
    result = range_attempt(source, pipeline, calibration, request,
                           attempt_rng);
    result.attempts = attempt + 1;
  }

  if (!result.status.ok() && chronos::retryable(result.status.code())) {
    result.status = {chronos::StatusCode::kRetryExhausted,
                     "all " + std::to_string(policy.max_attempts) +
                         " attempts failed; last: " +
                         result.status.to_string()};
  }
  return result;
}

RangingResult range_with_retries(const SweepSource& source,
                                 const RangingPipeline& pipeline,
                                 const CalibrationTable& calibration,
                                 const ResolvedRequest& request,
                                 const mathx::Rng& ticket_stream,
                                 const chronos::RetryPolicy& policy) {
  mathx::Rng first_rng = ticket_stream;
  RangingResult first =
      range_attempt(source, pipeline, calibration, request, first_rng);
  return finish_with_retries(source, pipeline, calibration, request,
                             ticket_stream, std::move(first), policy);
}

}  // namespace chronos::core
