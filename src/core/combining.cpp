#include "core/combining.hpp"

#include <cmath>

#include "core/subcarrier_interp.hpp"
#include "mathx/contracts.hpp"
#include "phy/intel5300.hpp"

namespace chronos::core {

namespace {

std::complex<double> integer_power(std::complex<double> z, int n) {
  std::complex<double> acc{1.0, 0.0};
  for (int i = 0; i < n; ++i) acc *= z;
  return acc;
}

/// RMS magnitude of a CSI measurement's 30 subcarrier values.
double band_rms(const phy::CsiMeasurement& m) {
  double acc = 0.0;
  for (const auto& v : m.values) acc += std::norm(v);
  return std::sqrt(acc / static_cast<double>(m.values.size()));
}

}  // namespace

double delay_axis_scale(const CombiningConfig& config) {
  return config.two_way ? 2.0 : 1.0;
}

std::vector<CombinedBand> combine_sweep(const phy::SweepMeasurement& sweep,
                                        const CombiningConfig& config,
                                        const CalibrationTable& calibration) {
  phy::validate(sweep);
  CHRONOS_EXPECTS(
      calibration.empty() || calibration.correction.size() == sweep.bands.size(),
      "calibration table size must match the sweep's band count");

  std::vector<CombinedBand> out;
  out.reserve(sweep.bands.size());

  for (std::size_t bi = 0; bi < sweep.bands.size(); ++bi) {
    const auto& captures = sweep.bands[bi];
    const phy::WifiBand& band = captures.front().forward.band;

    // Per-direction exponent: 4 on 2.4 GHz when fixing the quadrant quirk.
    const int exponent =
        config.quirk_fix ? phy::per_direction_exponent(band) : 1;

    std::complex<double> acc{0.0, 0.0};
    double toa_acc = 0.0;
    double snr_acc = 0.0;
    for (const auto& cap : captures) {
      const auto fwd = interpolate_to_center(cap.forward);
      toa_acc += fwd.toa_slope_s;
      snr_acc += cap.forward.snr_db;

      std::complex<double> fwd_val = fwd.zero_subcarrier;
      if (config.normalization == Normalization::kBandAgc) {
        const double rms = band_rms(cap.forward);
        CHRONOS_EXPECTS(rms > 0.0, "all-zero CSI measurement");
        fwd_val /= rms;
      }
      std::complex<double> combined = integer_power(fwd_val, exponent);
      if (config.two_way) {
        const auto rev = interpolate_to_center(cap.reverse);
        std::complex<double> rev_val = rev.zero_subcarrier;
        if (config.normalization == Normalization::kBandAgc) {
          const double rms = band_rms(cap.reverse);
          CHRONOS_EXPECTS(rms > 0.0, "all-zero CSI measurement");
          rev_val /= rms;
        }
        combined *= integer_power(rev_val, exponent);
      }
      acc += combined;
    }
    const auto n = static_cast<double>(captures.size());

    CombinedBand cb;
    cb.band = band;
    cb.value = acc / n;
    cb.direction_exponent = exponent;
    cb.row_freq_hz = static_cast<double>(exponent) * band.center_freq_hz;
    cb.snr_db = snr_acc / n;
    cb.toa_slope_s = toa_acc / n;

    if (!calibration.empty()) cb.value *= calibration.correction[bi];
    const double mag = std::abs(cb.value);
    if (config.normalization == Normalization::kUnitModulus) {
      if (mag > 0.0) cb.value /= mag;
    } else if (config.normalization == Normalization::kBandAgc &&
               mag > config.magnitude_cap) {
      cb.value *= config.magnitude_cap / mag;
    }
    out.push_back(cb);
  }
  return out;
}

}  // namespace chronos::core
