// Chinese-Remainder-style time-of-flight recovery (paper §4, Fig 3).
//
// Each band's center-frequency channel phase pins tau modulo 1/f_i:
//   tau = -angle(h_i)/(2*pi*f_i)  mod  1/f_i.
// Stitching bands turns this into a system of congruences whose solution is
// unique modulo lcm(1/f_i). With noisy phases the textbook integer CRT is
// brittle, so the solver scores every candidate tau on a fine grid by how
// many congruences it satisfies (the "most aligned colored lines" criterion
// of Fig 3), then refines the winner with a phase-coherent score.
//
// This module handles the single-dominant-path case the paper uses to
// explain the idea; the full multipath treatment is the inverse NDFT
// (core/ndft.hpp), of which this is the sparsest special case.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace chronos::core {

struct CrtSolverOptions {
  double tau_min_s = 0.0;
  double tau_max_s = 200e-9;   ///< search window (60 m of flight)
  double grid_step_s = 10e-12; ///< candidate spacing
  /// A congruence counts as satisfied when the candidate lands within this
  /// fraction of the band's period 1/f_i of a solution line.
  double tolerance_fraction = 0.12;
};

struct CrtSolution {
  double tof_s = 0.0;
  int satisfied_equations = 0;  ///< how many bands voted for the winner
  double alignment_score = 0.0; ///< sum_i cos(phase residual_i), max = n
};

/// Solutions of a single band's congruence within [0, tau_max): the
/// "colored vertical lines" of Fig 3. `channel` is the measured channel at
/// the band center `freq_hz`.
std::vector<double> candidate_solutions(std::complex<double> channel,
                                        double freq_hz, double tau_max_s);

/// Solves the system of congruences given per-band center-frequency
/// channels and their frequencies. Requires at least two bands.
CrtSolution solve_crt(std::span<const std::complex<double>> channels,
                      std::span<const double> freqs_hz,
                      const CrtSolverOptions& opts = {});

/// The phase-coherent alignment score at a specific candidate tau:
/// sum_i cos(angle(h_i) + 2*pi*f_i*tau). Exposed for Fig-3 style sweeps.
double alignment_score(std::span<const std::complex<double>> channels,
                       std::span<const double> freqs_hz, double tau_s);

}  // namespace chronos::core
