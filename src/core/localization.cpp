#include "core/localization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mathx/contracts.hpp"

namespace chronos::core {

std::vector<bool> reject_outliers(std::span<const geom::Vec2> anchors,
                                  std::span<const double> distances,
                                  double slack_m) {
  CHRONOS_EXPECTS(anchors.size() == distances.size(),
                  "anchors/distances size mismatch");
  CHRONOS_EXPECTS(slack_m >= 0.0, "slack must be non-negative");
  const std::size_t n = anchors.size();
  std::vector<bool> used(n, true);

  auto violation = [&](std::size_t i, std::size_t j) {
    // |d_i - d_j| must not exceed the anchor separation (+ slack).
    const double sep = geom::distance(anchors[i], anchors[j]);
    const double diff = std::abs(distances[i] - distances[j]);
    return std::max(0.0, diff - sep - slack_m);
  };

  while (true) {
    std::size_t active = 0;
    for (bool u : used) active += u ? 1 : 0;
    if (active <= 2) break;

    // Total violation charged to each active measurement.
    std::vector<double> charge(n, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!used[j]) continue;
        const double v = violation(i, j);
        charge[i] += v;
        charge[j] += v;
        total += v;
      }
    }
    if (total <= 0.0) break;  // geometry-consistent

    const auto worst = static_cast<std::size_t>(std::distance(
        charge.begin(), std::max_element(charge.begin(), charge.end())));
    used[worst] = false;
  }
  return used;
}

LocalizationResult localize(std::span<const geom::Vec2> anchors,
                            std::span<const double> distances,
                            const LocalizerOptions& opts,
                            const std::optional<geom::Vec2>& hint) {
  CHRONOS_EXPECTS(anchors.size() == distances.size() && anchors.size() >= 2,
                  "localization needs at least two anchor distances");
  for (double d : distances)
    CHRONOS_EXPECTS(d >= 0.0, "distances must be non-negative");

  LocalizationResult out;
  out.used = reject_outliers(anchors, distances, opts.geometry_slack_m);

  std::vector<geom::RangeMeasurement> ranges;
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    if (out.used[i]) ranges.push_back({anchors[i], distances[i]});
  }
  out.used_count = ranges.size();

  if (ranges.size() >= 3) {
    const auto fit = geom::trilaterate(ranges, opts.trilateration);
    out.position = fit.position;
    out.residual_rms_m = fit.residual_rms;
    out.valid = true;
    return out;
  }

  // Two anchors: disambiguate the mirror pair with the hint (§8).
  const auto both =
      geom::solve_both_sides(ranges[0], ranges[1], opts.trilateration);
  const auto& a = both.first;
  const auto& b = both.second;
  if (hint) {
    const double da = geom::distance(a.position, *hint);
    const double db = geom::distance(b.position, *hint);
    const auto& pick = (da <= db) ? a : b;
    out.position = pick.position;
    out.residual_rms_m = pick.residual_rms;
  } else {
    // Deterministic default: the solution on the positive cross side of
    // the anchor baseline.
    const geom::Vec2 axis = ranges[1].anchor - ranges[0].anchor;
    const double cross_a = axis.cross(a.position - ranges[0].anchor);
    const auto& pick = (cross_a >= 0.0) ? a : b;
    out.position = pick.position;
    out.residual_rms_m = pick.residual_rms;
  }
  out.valid = true;
  return out;
}

}  // namespace chronos::core
