// Structure-exploiting kernel layer under the NDFT solver.
//
// The sparse inversion of the paper's Fourier matrix F (35 scattered Wi-Fi
// center frequencies x thousands of candidate delays) spends essentially all
// of its time in three operations: the forward product F p, the adjoint
// F^H x, and matched-filter scans of h over a delay axis. This layer owns the
// precomputed structure those operations exploit:
//
//  * NdftPlan — the immutable per-(row freqs, grid, weights) precomputation:
//    the Fourier matrix stored BOTH as the legacy dense complex matrix (kept
//    for the public NdftSolver::matrix() API and the OMP atom algebra) and as
//    split-complex SoA planes (separate real/imag row-major arrays) whose
//    plain double loops auto-vectorize, plus the power-iteration step size
//    gamma = 1/||F||_2^2. Plans are shared through a process-wide cache so
//    repeated pipeline construction (fleet scenarios, benches, tests) pays
//    the O(n*m) build and the spectral-norm iteration once.
//  * NdftWorkspace — caller-owned scratch sized for one plan, so the
//    ISTA/FISTA iteration loops run with zero heap allocations.
//  * Kernels — forward (dense and active-set), adjoint, fused gradient
//    F^H (F p - h), and a batched recurrence matched-filter scan that
//    replaces per-sample std::polar calls with one phasor rotation per row.
//
// Numerical contract: the split-complex kernels reproduce the legacy
// mathx::Matrix path bit-for-bit on dense inputs (identical operation order
// per component), and the active-set forward skips only columns whose
// coefficient is exactly zero — so it is bit-identical too. Only the
// recurrence scans differ from per-point evaluation, at the ~1e-13 relative
// level over bench-length scans (tests/test_core_ndft_kernels.cpp pins all
// of this).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mathx/matrix.hpp"

namespace chronos::core {

/// Uniform grid of candidate delays for the recovered profile. For two-way
/// combined channels the axis is u = 2*tau (first peak at twice the ToF).
struct DelayGrid {
  double min_s = 0.0;
  double max_s = 400e-9;
  double step_s = 0.1e-9;

  std::size_t size() const;
  double delay_at(std::size_t i) const;
};

/// Caller-owned scratch for the allocation-free solver loops. `bind` sizes
/// every buffer for an (n rows, m cols) plan; it reallocates only when the
/// bound shape grows, so reusing one workspace across solves of the same
/// pipeline performs no allocation at all after the first call.
struct NdftWorkspace {
  // Split measurement vector (n).
  std::vector<double> h_re, h_im;
  // Forward product / residual F p - h (n).
  std::vector<double> fp_re, fp_im;
  // Gradient F^H (F p - h) (m).
  std::vector<double> grad_re, grad_im;
  // Iterates (m). FISTA additionally uses the prev/extrapolated pair.
  std::vector<double> p_re, p_im;
  std::vector<double> p_prev_re, p_prev_im;
  std::vector<double> y_re, y_im;
  // Indices of the (exactly) nonzero columns of the current iterate.
  std::vector<std::uint32_t> active;

  void bind(std::size_t rows, std::size_t cols);
};

/// Immutable precomputation for one (row frequencies, delay grid, row
/// weights) triple. Thread-safe to share: every method is const and touches
/// only immutable state.
class NdftPlan {
 public:
  /// Builds a plan without consulting the cache (tests, one-off grids).
  NdftPlan(std::vector<double> row_freqs_hz, DelayGrid grid,
           std::vector<double> row_weights);

  /// Returns the shared plan for this key, building it on first use. The
  /// cache is process-wide, bounded, and guarded by an annotated
  /// chronos::Mutex capability (every entry access is provably locked
  /// under clang -Wthread-safety); keys compare by
  /// exact (bitwise) equality of frequencies, grid, and weights, so a hit
  /// is guaranteed to reproduce the original plan's numerics (gamma comes
  /// from a fixed-seed power iteration and is therefore deterministic).
  static std::shared_ptr<const NdftPlan> get_or_create(
      std::span<const double> row_freqs_hz, const DelayGrid& grid,
      std::span<const double> row_weights);

  static std::size_t cache_size();
  static void clear_cache();

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return m_; }
  const std::vector<double>& row_freqs_hz() const { return freqs_; }
  const std::vector<double>& row_weights() const { return weights_; }
  const DelayGrid& grid() const { return grid_; }
  const mathx::ComplexMatrix& matrix() const { return f_; }
  /// ISTA/FISTA step size 1/||F||_2^2 (paper Algorithm 1).
  double gamma() const { return gamma_; }

  /// out = F p (dense): out_re/out_im and p_re/p_im are length rows()/cols().
  void forward(const double* p_re, const double* p_im, double* out_re,
               double* out_im) const;

  /// out = F p walking only the listed columns; bit-identical to the dense
  /// forward when every column absent from `cols` holds an exact zero.
  void forward_active(const double* p_re, const double* p_im,
                      std::span<const std::uint32_t> cols, double* out_re,
                      double* out_im) const;

  /// out = F^H x: x is length rows(), out is length cols().
  void adjoint(const double* x_re, const double* x_im, double* out_re,
               double* out_im) const;

  /// Fused gradient of the data term: ws.grad = F^H (F p - h), with the
  /// forward product restricted to ws.active (p's nonzero columns). Uses
  /// ws.fp as residual scratch; ws.h must hold the split measurement.
  void gradient(const double* p_re, const double* p_im,
                NdftWorkspace& ws) const;

  /// out[k] = |sum_i h_i e^{+j 2 pi f_i (u0 + k du)}| for k in [0, count).
  /// One complex rotation per row per step (the geometric-sequence trick of
  /// the matrix constructor) instead of a std::polar per row per step; the
  /// rotators are re-anchored periodically so magnitude drift stays at the
  /// ulp level over arbitrarily long scans.
  void matched_filter_scan(std::span<const std::complex<double>> h, double u0,
                           double du, std::size_t count,
                           double* out) const;

  /// Single-point matched filter |sum_i h_i e^{+j 2 pi f_i u}| (exact
  /// per-point evaluation, shared by the scan anchors).
  double matched_filter(std::span<const std::complex<double>> h,
                        double u) const;

 private:
  std::vector<double> freqs_;
  std::vector<double> weights_;
  DelayGrid grid_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  // Split-complex row-major planes of F (n_ x m_ each).
  std::vector<double> re_, im_;
  // Legacy dense representation (public matrix() API, OMP atom algebra).
  mathx::ComplexMatrix f_;
  double gamma_ = 0.0;
};

}  // namespace chronos::core
