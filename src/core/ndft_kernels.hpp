// Structure-exploiting kernel layer under the NDFT solver.
//
// The sparse inversion of the paper's Fourier matrix F (35 scattered Wi-Fi
// center frequencies x thousands of candidate delays) spends essentially all
// of its time in three operations: the forward product F p, the adjoint
// F^H x, and matched-filter scans of h over a delay axis. This layer owns the
// precomputed structure those operations exploit:
//
//  * NdftPlan — the immutable per-(row freqs, grid, weights) precomputation:
//    the Fourier matrix stored BOTH as the legacy dense complex matrix (kept
//    for the public NdftSolver::matrix() API and the OMP atom algebra) and as
//    split-complex SoA planes (separate real/imag row-major arrays) whose
//    plain double loops auto-vectorize, plus the power-iteration step size
//    gamma = 1/||F||_2^2. Plans are shared through a process-wide cache so
//    repeated pipeline construction (fleet scenarios, benches, tests) pays
//    the O(n*m) build and the spectral-norm iteration once.
//  * NdftWorkspace — caller-owned scratch sized for one plan, so the
//    ISTA/FISTA iteration loops run with zero heap allocations.
//  * Kernels — forward (dense and active-set), adjoint, fused gradient
//    F^H (F p - h), and a batched recurrence matched-filter scan that
//    replaces per-sample std::polar calls with one phasor rotation per row.
//  * Toeplitz tier (round 2) — on the uniform delay grid, T = F^H F is
//    Toeplitz: T_{c,l} = g(l-c) with g(d) = sum_i w_i^2 e^{-j2π f_i Δ d}.
//    The plan precomputes the kernel diagonal g once, and the gradient
//    T y - F^H h is then evaluated either by windowed accumulation over
//    y's active set (O(|A| m)) or as a circulant convolution via two
//    cached-plan FFTs of padded pow2 length (O(L log L), independent of
//    the row count) — with F^H h computed once per solve into the
//    workspace instead of an O(nm) adjoint per iteration.
//
// Numerical contract: the split-complex kernels reproduce the legacy
// mathx::Matrix path bit-for-bit on dense inputs (identical operation order
// per component), and the active-set forward skips only columns whose
// coefficient is exactly zero — so it is bit-identical too. The recurrence
// scans differ from per-point evaluation at the ~1e-13 relative level over
// bench-length scans, and the Toeplitz gradient arms agree with the dense
// fused gradient to ~1e-13 relative (solver iterates stay within 1e-12 of
// the dense path; tests/test_core_ndft_kernels.cpp pins all of this).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mathx/fft.hpp"
#include "mathx/matrix.hpp"

namespace chronos::core {

/// Uniform grid of candidate delays for the recovered profile. For two-way
/// combined channels the axis is u = 2*tau (first peak at twice the ToF).
struct DelayGrid {
  double min_s = 0.0;
  double max_s = 400e-9;
  double step_s = 0.1e-9;

  std::size_t size() const;
  double delay_at(std::size_t i) const;
};

/// Caller-owned scratch for the allocation-free solver loops. `bind` sizes
/// every buffer for an (n rows, m cols) plan; it reallocates only when the
/// bound shape grows, so reusing one workspace across solves of the same
/// pipeline performs no allocation at all after the first call.
struct NdftWorkspace {
  // Split measurement vector (n).
  std::vector<double> h_re, h_im;
  // Forward product / residual F p - h (n).
  std::vector<double> fp_re, fp_im;
  // Gradient F^H (F p - h) (m).
  std::vector<double> grad_re, grad_im;
  // Iterates (m). FISTA additionally uses the extrapolated point y.
  std::vector<double> p_re, p_im;
  std::vector<double> y_re, y_im;
  // b = F^H h — the fixed linear term of the Toeplitz gradient T y - b,
  // computed once per solve (m).
  std::vector<double> b_re, b_im;
  // Circulant convolution scratch for the Toeplitz/FFT gradient arm
  // (next_pow2(2m - 1); unused but still bound for dense-only plans).
  std::vector<double> conv_re, conv_im;
  // Indices of the (exactly) nonzero columns of the current iterate.
  std::vector<std::uint32_t> active;

  void bind(std::size_t rows, std::size_t cols);
};

/// Immutable precomputation for one (row frequencies, delay grid, row
/// weights) triple. Thread-safe to share: every method is const and touches
/// only immutable state.
class NdftPlan {
 public:
  /// Builds a plan without consulting the cache (tests, one-off grids).
  NdftPlan(std::vector<double> row_freqs_hz, DelayGrid grid,
           std::vector<double> row_weights);

  /// Returns the shared plan for this key, building it on first use. The
  /// cache is process-wide, bounded, and guarded by an annotated
  /// chronos::Mutex capability (every entry access is provably locked
  /// under clang -Wthread-safety); keys compare by
  /// exact (bitwise) equality of frequencies, grid, and weights, so a hit
  /// is guaranteed to reproduce the original plan's numerics (gamma comes
  /// from a fixed-seed power iteration and is therefore deterministic).
  static std::shared_ptr<const NdftPlan> get_or_create(
      std::span<const double> row_freqs_hz, const DelayGrid& grid,
      std::span<const double> row_weights);

  static std::size_t cache_size();
  static void clear_cache();

  std::size_t rows() const { return n_; }
  std::size_t cols() const { return m_; }
  const std::vector<double>& row_freqs_hz() const { return freqs_; }
  const std::vector<double>& row_weights() const { return weights_; }
  const DelayGrid& grid() const { return grid_; }
  const mathx::ComplexMatrix& matrix() const { return f_; }
  /// ISTA/FISTA step size 1/||F||_2^2 (paper Algorithm 1). Zero for
  /// degenerate plans (all-zero weights) — the solvers then take
  /// zero-length steps and converge immediately to p = 0.
  double gamma() const { return gamma_; }

  /// The gradient-evaluation arms of the round-2 kernel tier. kDense is the
  /// legacy fused forward/adjoint (the golden reference); kScatter
  /// accumulates Toeplitz-kernel windows over the active set; kConv
  /// evaluates T y via two cached-plan FFTs on the circulant embedding.
  enum class GradientArm { kDense, kScatter, kConv };

  /// True when this plan carries the Toeplitz tier: at least two uniform,
  /// finite grid delays, finite frequencies/weights, and gamma > 0.
  /// Degenerate plans (single-column grids, all-zero weights, non-finite
  /// inputs) answer false and every gradient request routes to the dense
  /// arm instead of asserting.
  bool toeplitz_capable() const { return toeplitz_capable_; }

  /// Padded pow2 circulant length L = next_pow2(2m - 1); 0 when the plan is
  /// not Toeplitz-capable.
  std::size_t conv_size() const { return conv_len_; }

  /// Picks the cheapest gradient arm for an iterate with `active_count`
  /// nonzero columns. A pure function of (plan, active_count) — batched and
  /// sequential solves therefore make identical choices, which is what
  /// keeps solve_fista_batch bit-identical to one-by-one solve_fista.
  GradientArm pick_arm(std::size_t active_count) const;

  /// ws.grad = T y - b by windowed accumulation over ws.active (y's nonzero
  /// columns): grad[c] = sum_{l in A} g(l-c) y[l] - b[c]. Requires ws.b to
  /// hold F^H h and the plan to be toeplitz_capable().
  void gradient_toeplitz_scatter(const double* y_re, const double* y_im,
                                 NdftWorkspace& ws) const;

  /// ws.grad = T y - b via the circulant FFT convolution: pad y to
  /// conv_size(), DIF-transform with the cached plan, multiply by the
  /// precomputed circulant spectrum (1/L folded in), DIT-invert, subtract
  /// b. Requires ws.b to hold F^H h and the plan to be toeplitz_capable().
  void gradient_toeplitz_fft(const double* y_re, const double* y_im,
                             NdftWorkspace& ws) const;

  /// out = F p (dense): out_re/out_im and p_re/p_im are length rows()/cols().
  void forward(const double* p_re, const double* p_im, double* out_re,
               double* out_im) const;

  /// out = F p walking only the listed columns; bit-identical to the dense
  /// forward when every column absent from `cols` holds an exact zero.
  void forward_active(const double* p_re, const double* p_im,
                      std::span<const std::uint32_t> cols, double* out_re,
                      double* out_im) const;

  /// out = F^H x: x is length rows(), out is length cols().
  void adjoint(const double* x_re, const double* x_im, double* out_re,
               double* out_im) const;

  /// Fused gradient of the data term: ws.grad = F^H (F p - h), with the
  /// forward product restricted to ws.active (p's nonzero columns). Uses
  /// ws.fp as residual scratch; ws.h must hold the split measurement.
  void gradient(const double* p_re, const double* p_im,
                NdftWorkspace& ws) const;

  /// out[k] = |sum_i h_i e^{+j 2 pi f_i (u0 + k du)}| for k in [0, count).
  /// One complex rotation per row per step (the geometric-sequence trick of
  /// the matrix constructor) instead of a std::polar per row per step; the
  /// rotators are re-anchored periodically so magnitude drift stays at the
  /// ulp level over arbitrarily long scans.
  void matched_filter_scan(std::span<const std::complex<double>> h, double u0,
                           double du, std::size_t count,
                           double* out) const;

  /// Single-point matched filter |sum_i h_i e^{+j 2 pi f_i u}| (exact
  /// per-point evaluation, shared by the scan anchors).
  double matched_filter(std::span<const std::complex<double>> h,
                        double u) const;

 private:
  void build_toeplitz();

  std::vector<double> freqs_;
  std::vector<double> weights_;
  DelayGrid grid_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  // Split-complex row-major planes of F (n_ x m_ each).
  std::vector<double> re_, im_;
  // Legacy dense representation (public matrix() API, OMP atom algebra).
  mathx::ComplexMatrix f_;
  double gamma_ = 0.0;
  // Toeplitz tier (empty unless toeplitz_capable_). tz_[j] = g(m-1-j) for
  // j in [0, 2m-2]: the kernel diagonal stored reversed, so for a fixed
  // active column l the window tz_ + (m-1-l) reads T_{c,l} = g(l-c) in
  // ascending c, contiguously.
  bool toeplitz_capable_ = false;
  std::vector<double> tz_re_, tz_im_;
  // Circulant embedding: L = next_pow2(2m-1), the shared FFT plan, and the
  // DIF spectrum of the circulant first column (bit-reversed order, the
  // inverse transform's 1/L folded in).
  std::size_t conv_len_ = 0;
  std::shared_ptr<const mathx::FftPlan> conv_plan_;
  std::vector<double> kerhat_re_, kerhat_im_;
};

}  // namespace chronos::core
