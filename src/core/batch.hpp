// The batched ranging runtime: many (tx antenna, rx antenna) sweeps ranged
// concurrently on a fixed-size worker pool, with a determinism contract.
//
// Contract — results are a pure function of (simulator, pipeline,
// calibration, requests, rng state at the call): every request i draws its
// noise from an independent child stream `base.split(i)` where `base` is
// forked once from the caller's rng, so thread count and worker scheduling
// cannot change a single bit of any RangingResult. Batched with N threads,
// batched with 1 thread, and a plain sequential loop over the split streams
// all agree exactly (tests/test_core_batch.cpp is the enforcement).
//
// This is the seam the ROADMAP's million-pair scaling path builds on:
// sharding a request list across machines, async ingestion, and alternate
// measurement backends all slot in behind `run_ranging_batch` without
// disturbing the single-pair API.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/ranging.hpp"
#include "geom/vec2.hpp"
#include "mathx/rng.hpp"
#include "sim/link.hpp"

namespace chronos::core {

/// One unit of ranging work: which antenna of which device ranges against
/// which antenna of which other device.
struct RangingRequest {
  sim::Device tx;
  std::size_t tx_antenna = 0;
  sim::Device rx;
  std::size_t rx_antenna = 0;
};

/// One unit of localization work (see ChronosEngine::locate_batch).
struct LocateRequest {
  sim::Device tx;
  sim::Device rx;
  std::optional<geom::Vec2> hint;
};

struct BatchOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = run inline on the
  /// calling thread (no pool). Clamped to the number of requests. Any value
  /// yields bit-identical results — this knob trades wall-clock only.
  int threads = 0;
};

struct BatchResult {
  /// results[i] corresponds to requests[i] (submission order, always).
  std::vector<RangingResult> results;
  /// Wall-clock diagnostics; informational only, NOT covered by the
  /// determinism contract.
  int threads_used = 1;
  double wall_time_s = 0.0;
};

/// Ranges every request through `pipeline` against sweeps simulated on
/// `link`. Advances `rng` by exactly one fork() regardless of batch size or
/// thread count, so surrounding sequential code stays reproducible too.
/// Rethrows the first (by request index) job exception after the pool
/// drains.
BatchResult run_ranging_batch(const sim::LinkSimulator& link,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const RangingRequest> requests,
                              mathx::Rng& rng,
                              const BatchOptions& options = {});

/// Thread count `run_ranging_batch` will actually use for `n_requests`
/// under `options` (exposed so benches can report honest numbers).
int resolve_batch_threads(const BatchOptions& options, std::size_t n_requests);

}  // namespace chronos::core
