// The batched ranging runtime: many (tx antenna, rx antenna) sweeps ranged
// concurrently on a worker pool, with a determinism contract and an async
// submission path.
//
// Contract — results are a pure function of (sweep source, pipeline,
// calibration, requests, rng state at the call): every request i draws its
// noise from an independent child stream `base.split(i)` where `base` is
// forked once from the caller's rng, so thread count and worker scheduling
// cannot change a single bit of any RangingResult. Batched with N threads,
// batched with 1 thread, and a plain sequential loop over the split streams
// all agree exactly (tests/test_core_batch.cpp is the enforcement).
//
// Error model (API v2): request-shaped failures are per-request data, not
// exceptions — results[i].status carries them, and one bad request never
// aborts the other N-1. Exceptions out of these entry points indicate
// programmer error.
//
// The measurement substrate is the `core::SweepSource` seam
// (core/sweep_source.hpp): the runtime is backend-generic, so simulated
// sweeps, recorded traces, and future live-capture transports all range
// through the identical code path.
//
// Two entry points (both thin clients of core/session.hpp, the streaming
// primitive with the bounded submission queue):
//   * run_ranging_batch     synchronous; runs inline for <= 1 thread,
//                           otherwise fans out on a worker pool (a caller-
//                           provided persistent pool, or a transient one);
//   * submit_ranging_batch  asynchronous; admits every request to a
//                           session on a persistent pool and returns a
//                           future-style BatchHandle immediately, enabling
//                           pipelined ingestion (submit the next batch
//                           while the previous one is still ranging).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/api.hpp"
#include "core/calibration.hpp"
#include "core/ranging.hpp"
#include "core/session.hpp"
#include "core/sweep_source.hpp"
#include "geom/vec2.hpp"
#include "mathx/rng.hpp"

namespace chronos::core {

class WorkerPool;

/// The public batch option/result types live on the chronos:: facade
/// (core/api.hpp); these aliases keep engine-level code terse.
using BatchOptions = chronos::BatchOptions;
using BatchResult = chronos::BatchResult;

/// One unit of localization work after backend resolution (see
/// ChronosEngine::locate_batch; new code submits chronos::LocateRequest
/// ids instead).
struct ResolvedLocateRequest {
  sim::Device tx;
  sim::Device rx;
  std::optional<geom::Vec2> hint;
};

/// Future-style handle to a batch in flight on a persistent worker pool.
///
/// Obtained from submit_ranging_batch (or ChronosEngine::submit_batch).
/// Results are collected once with get(). The handle is self-contained: it
/// owns a streaming session over the pool, which co-owns the source,
/// pipeline, and calibration, so the submitting caller's request buffer may
/// die immediately and the handle remains collectable even after the engine
/// that issued it is destroyed. Movable, not copyable. Destroying a handle
/// without get() is safe: in-flight jobs finish, their results are dropped.
class BatchHandle {
 public:
  BatchHandle() = default;
  BatchHandle(BatchHandle&&) noexcept;
  BatchHandle& operator=(BatchHandle&&) noexcept;
  ~BatchHandle();

  BatchHandle(const BatchHandle&) = delete;
  BatchHandle& operator=(const BatchHandle&) = delete;

  /// True until get() consumes the handle.
  bool valid() const { return state_ != nullptr; }

  /// Number of requests in flight under this handle.
  std::size_t size() const;

  /// True once every request has finished (poll; never blocks).
  bool ready() const;

  /// Blocks until every request has finished.
  void wait() const;

  /// Blocks, then returns results in submission order — per-request
  /// failures in results[i].status. Consumes the handle (valid() becomes
  /// false).
  BatchResult get();

 private:
  friend BatchHandle submit_ranging_batch(
      std::shared_ptr<WorkerPool> pool,
      std::shared_ptr<const SweepSource> source,
      std::shared_ptr<const RangingPipeline> pipeline,
      std::shared_ptr<const CalibrationTable> calibration,
      std::span<const ResolvedRequest> requests, mathx::Rng& rng,
      const chronos::RetryPolicy& retry);
  friend BatchHandle make_batch_handle(RangingSession session,
                                       int threads_used);
  struct State;
  std::shared_ptr<State> state_;
};

/// Wraps an already-fed session in a BatchHandle (the adapter the engine's
/// id-based submit_batch uses after resolving + admitting its requests).
BatchHandle make_batch_handle(RangingSession session, int threads_used);

/// Async entry point: opens an unbounded session (forking `rng` once, so
/// the caller's stream advances identically to the synchronous path),
/// admits every request, and returns without waiting. The handle co-owns
/// every argument, so no lifetime obligation survives the call. `retry`
/// bounds per-ticket re-ranging of retryable failures (core/retry.hpp).
BatchHandle submit_ranging_batch(
    std::shared_ptr<WorkerPool> pool,
    std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration,
    std::span<const ResolvedRequest> requests, mathx::Rng& rng,
    const chronos::RetryPolicy& retry = {});

/// Ranges every request through `pipeline` against sweeps produced by
/// `source`. Advances `rng` by exactly one fork() regardless of batch size
/// or thread count, so surrounding sequential code stays reproducible too.
/// Per-request failures land in results[i].status.
///
/// `prefailed` (empty, or one Status per request) marks slots that already
/// failed upstream (e.g. id resolution): a non-ok prefailed[i] becomes
/// results[i].status directly — the backend is never consulted for that
/// slot and its split stream goes unused, leaving every other slot
/// bit-identical to the all-valid batch.
///
/// With `pool == nullptr` and more than one resolved thread, a transient
/// pool is spawned for the call (the pre-session behavior); passing a
/// persistent pool reuses its long-lived workers — and their warmed
/// thread-local solver workspaces — across batches.
///
/// FISTA pipelines drain requests in groups of ranging_solve_group()
/// through RangingPipeline::estimate_batch (the multi-RHS solver panel);
/// every result stays bit-identical to per-request processing.
BatchResult run_ranging_batch(const SweepSource& source,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const ResolvedRequest> requests,
                              mathx::Rng& rng,
                              const BatchOptions& options = {},
                              std::shared_ptr<WorkerPool> pool = nullptr,
                              std::span<const chronos::Status> prefailed = {});

/// Thread count `run_ranging_batch` will actually use for `n_requests`
/// under `options` (exposed so benches can report honest numbers).
int resolve_batch_threads(const BatchOptions& options, std::size_t n_requests);

}  // namespace chronos::core
