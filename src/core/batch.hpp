// The batched ranging runtime: many (tx antenna, rx antenna) sweeps ranged
// concurrently on a worker pool, with a determinism contract and an async
// submission path.
//
// Contract — results are a pure function of (sweep source, pipeline,
// calibration, requests, rng state at the call): every request i draws its
// noise from an independent child stream `base.split(i)` where `base` is
// forked once from the caller's rng, so thread count and worker scheduling
// cannot change a single bit of any RangingResult. Batched with N threads,
// batched with 1 thread, and a plain sequential loop over the split streams
// all agree exactly (tests/test_core_batch.cpp is the enforcement).
//
// The measurement substrate is the `core::SweepSource` seam
// (core/sweep_source.hpp): the runtime is backend-generic, so simulated
// sweeps, recorded traces, and future live-capture transports all range
// through the identical code path.
//
// Two entry points:
//   * run_ranging_batch     synchronous; runs inline for <= 1 thread,
//                           otherwise fans out on a worker pool (a caller-
//                           provided persistent pool, or a transient one);
//   * submit_ranging_batch  asynchronous; enqueues every request on a
//                           persistent pool and returns a future-style
//                           BatchHandle immediately, enabling pipelined
//                           ingestion (submit the next batch while the
//                           previous one is still ranging).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/ranging.hpp"
#include "core/sweep_source.hpp"
#include "geom/vec2.hpp"
#include "mathx/rng.hpp"

namespace chronos::core {

class WorkerPool;

/// One unit of localization work (see ChronosEngine::locate_batch).
struct LocateRequest {
  sim::Device tx;
  sim::Device rx;
  std::optional<geom::Vec2> hint;
};

struct BatchOptions {
  /// Worker threads. 0 = one per hardware thread; 1 = run inline on the
  /// calling thread (no pool). Clamped to the number of requests. Any value
  /// yields bit-identical results — this knob trades wall-clock only.
  int threads = 0;
};

struct BatchResult {
  /// results[i] corresponds to requests[i] (submission order, always).
  std::vector<RangingResult> results;
  /// Wall-clock diagnostics; informational only, NOT covered by the
  /// determinism contract. For async submissions, wall_time_s spans
  /// submit -> get() collection.
  int threads_used = 1;
  double wall_time_s = 0.0;
};

/// Future-style handle to a batch in flight on a persistent worker pool.
///
/// Obtained from submit_ranging_batch (or ChronosEngine::submit_batch).
/// Results are collected once with get(). The handle is self-contained: it
/// owns a copy of the requests plus shared references on the pool, source,
/// pipeline, and calibration, so the submitting caller's request buffer may
/// die immediately and the handle remains collectable even after the engine
/// that issued it is destroyed. Movable, not copyable. Destroying a handle
/// without get() is safe: in-flight jobs finish, their results are dropped.
class BatchHandle {
 public:
  BatchHandle() = default;
  BatchHandle(BatchHandle&&) noexcept;
  BatchHandle& operator=(BatchHandle&&) noexcept;
  ~BatchHandle();

  BatchHandle(const BatchHandle&) = delete;
  BatchHandle& operator=(const BatchHandle&) = delete;

  /// True until get() consumes the handle.
  bool valid() const { return state_ != nullptr; }

  /// Number of requests in flight under this handle.
  std::size_t size() const;

  /// True once every request has finished (poll; never blocks).
  bool ready() const;

  /// Blocks until every request has finished.
  void wait() const;

  /// Blocks, then returns results in submission order. Rethrows the first
  /// (by request index) job exception after the batch drains. Consumes the
  /// handle (valid() becomes false).
  BatchResult get();

 private:
  friend BatchHandle submit_ranging_batch(
      std::shared_ptr<WorkerPool> pool,
      std::shared_ptr<const SweepSource> source,
      std::shared_ptr<const RangingPipeline> pipeline,
      std::shared_ptr<const CalibrationTable> calibration,
      std::span<const RangingRequest> requests, mathx::Rng& rng);
  struct State;
  std::shared_ptr<State> state_;
};

/// Async entry point: forks `rng` once (immediately, so the caller's stream
/// advances identically to the synchronous path), enqueues every request on
/// `pool`, and returns without waiting. The handle co-owns every argument,
/// so no lifetime obligation survives the call. (For stack-owned pipeline
/// objects, wrap them in a non-owning aliasing shared_ptr only if they
/// provably outlive the handle — owning pointers are the safe default.)
BatchHandle submit_ranging_batch(
    std::shared_ptr<WorkerPool> pool,
    std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration,
    std::span<const RangingRequest> requests, mathx::Rng& rng);

/// Ranges every request through `pipeline` against sweeps produced by
/// `source`. Advances `rng` by exactly one fork() regardless of batch size
/// or thread count, so surrounding sequential code stays reproducible too.
/// Rethrows the first (by request index) job exception after the pool
/// drains.
///
/// With `pool == nullptr` and more than one resolved thread, a transient
/// pool is spawned for the call (the pre-session behavior); passing a
/// persistent pool reuses its long-lived workers — and their warmed
/// thread-local solver workspaces — across batches.
BatchResult run_ranging_batch(const SweepSource& source,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const RangingRequest> requests,
                              mathx::Rng& rng,
                              const BatchOptions& options = {},
                              std::shared_ptr<WorkerPool> pool = nullptr);

/// Thread count `run_ranging_batch` will actually use for `n_requests`
/// under `options` (exposed so benches can report honest numbers).
int resolve_batch_threads(const BatchOptions& options, std::size_t n_requests);

}  // namespace chronos::core
