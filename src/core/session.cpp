#include "core/session.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <utility>

#include "core/retry.hpp"
#include "core/worker_pool.hpp"
#include "mathx/annotations.hpp"
#include "mathx/contracts.hpp"

namespace chronos::core {

namespace {

/// What the per-ticket jobs co-own. Deliberately does NOT reference the
/// pool — a worker thread may drop the last reference, and it must never
/// end up destroying (and thus self-joining) its own pool. The pool is
/// held caller-side by RangingSession::State (and by any BatchHandle).
struct Shared {
  const mathx::Rng base;
  const std::shared_ptr<const SweepSource> source;
  const std::shared_ptr<const RangingPipeline> pipeline;
  const std::shared_ptr<const CalibrationTable> calibration;
  const chronos::RetryPolicy retry;

  mutable chronos::Mutex mutex;
  mutable chronos::CondVar cv;
  /// Tickets issued.
  std::uint64_t submitted CHRONOS_GUARDED_BY(mutex) = 0;
  /// Tickets whose result is in `done` or already collected.
  std::uint64_t finished CHRONOS_GUARDED_BY(mutex) = 0;
  /// Tickets returned to the caller.
  std::uint64_t collected CHRONOS_GUARDED_BY(mutex) = 0;
  /// Finished, uncollected results.
  std::map<std::uint64_t, RangingResult> done CHRONOS_GUARDED_BY(mutex);

  Shared(const mathx::Rng& b, std::shared_ptr<const SweepSource> src,
         std::shared_ptr<const RangingPipeline> pipe,
         std::shared_ptr<const CalibrationTable> cal,
         const chronos::RetryPolicy& retry_policy)
      : base(b),
        source(std::move(src)),
        pipeline(std::move(pipe)),
        calibration(std::move(cal)),
        retry(retry_policy) {}
};

/// Ranges one resolved request on split stream `stream_index` (the local
/// ticket for plain sessions; a caller-owned global index for sharded
/// ones). All request-shaped failures land in the result's status;
/// anything thrown is a library defect, captured as kInternal so one bad
/// job cannot poison the pool or the session.
RangingResult range_one(const Shared& shared, std::uint64_t stream_index,
                        const ResolvedRequest& request) {
  RangingResult result;
  try {
    // Ticket stream + retries: attempt 0 consumes a copy of split(i)
    // exactly as the retry-free path consumed the split itself; retry a
    // draws from split(i).split(kRetryStreamTag + a).
    result = range_with_retries(*shared.source, *shared.pipeline,
                                *shared.calibration, request,
                                shared.base.split(stream_index), shared.retry);
  } catch (const std::exception& e) {
    result = RangingResult{};
    result.status = {chronos::StatusCode::kInternal, e.what()};
  } catch (...) {
    result = RangingResult{};
    result.status = {chronos::StatusCode::kInternal,
                     "non-exception throw while ranging"};
  }
  return result;
}

/// Ranges a whole admitted group on one worker. Per-ticket split streams
/// and sweep failures are exactly what range_one would produce for each
/// ticket; the good sweeps then drain through ONE
/// RangingPipeline::estimate_batch (the multi-RHS solver panel), and an
/// index scatter re-aligns the estimates with their tickets. Anything
/// thrown is a library defect: once the shared panel solve has failed, no
/// per-ticket result can be trusted, so every ticket in the group reports
/// kInternal.
std::vector<RangingResult> range_group(
    const Shared& shared, std::uint64_t first_ticket,
    std::span<const ResolvedRequest> requests) {
  std::vector<RangingResult> results(requests.size());
  try {
    std::vector<phy::SweepMeasurement> sweeps;
    std::vector<std::size_t> slots;
    sweeps.reserve(requests.size());
    slots.reserve(requests.size());
    for (std::size_t j = 0; j < requests.size(); ++j) {
      mathx::Rng child =
          shared.base.split(first_ticket + static_cast<std::uint64_t>(j));
      auto sweep = shared.source->sweep_for(requests[j], child);
      if (!sweep.ok()) {
        results[j].status = sweep.status();
        continue;
      }
      sweeps.push_back(std::move(sweep).value());
      slots.push_back(j);
    }
    if (!sweeps.empty()) {
      auto estimates =
          shared.pipeline->estimate_batch(sweeps, *shared.calibration);
      for (std::size_t k = 0; k < slots.size(); ++k) {
        results[slots[k]] = std::move(estimates[k]);
      }
    }
    // Retries ride per ticket AFTER the shared panel: only failed slots
    // pay per-request retry solves, and each retry attempt is a pure
    // function of its ticket stream — bit-identical to range_one.
    for (std::size_t j = 0; j < requests.size(); ++j) {
      results[j] = finish_with_retries(
          *shared.source, *shared.pipeline, *shared.calibration, requests[j],
          shared.base.split(first_ticket + static_cast<std::uint64_t>(j)),
          std::move(results[j]), shared.retry);
    }
  } catch (const std::exception& e) {
    for (auto& result : results) {
      result = RangingResult{};
      result.status = {chronos::StatusCode::kInternal, e.what()};
    }
  } catch (...) {
    for (auto& result : results) {
      result = RangingResult{};
      result.status = {chronos::StatusCode::kInternal,
                       "non-exception throw while ranging"};
    }
  }
  return results;
}

void complete(const std::shared_ptr<Shared>& shared, std::uint64_t ticket,
              RangingResult result) {
  chronos::MutexLock lock(shared->mutex);
  shared->done.emplace(ticket, std::move(result));
  ++shared->finished;
  shared->cv.notify_all();
}

}  // namespace

struct RangingSession::State {
  std::shared_ptr<Shared> shared;
  std::shared_ptr<WorkerPool> pool;  ///< caller-side ownership only
  std::size_t depth = 1;
};

std::size_t RangingSession::queue_depth() const {
  CHRONOS_EXPECTS(state_ != nullptr, "queue_depth() on an invalid session");
  return state_->depth;
}

int RangingSession::threads() const {
  CHRONOS_EXPECTS(state_ != nullptr, "threads() on an invalid session");
  return static_cast<int>(state_->pool->size());
}

chronos::Result<std::uint64_t> RangingSession::try_submit(
    const chronos::RangingRequest& request) {
  CHRONOS_EXPECTS(state_ != nullptr, "try_submit() on an invalid session");
  auto queue_full = [this] {
    return chronos::Status{
        chronos::StatusCode::kQueueFull,
        "submission queue at depth " + std::to_string(state_->depth) +
            "; collect results and resubmit"};
  };
  // Capacity first, resolution second: rejection is the hot path of a
  // saturating producer, and it must not pay a directory lookup (plus two
  // device copies) just to throw the result away. try_submit_resolved
  // re-checks under the lock, so a concurrent producer sneaking in
  // between the two checks still cannot overfill the queue. The check
  // itself must stay allocation-free (a malloc under a saturating
  // producer's rejection path would serialize producers on the heap
  // lock) — the lint region makes that a compile-tree guarantee.
  // lint:region(no-alloc)
  {
    chronos::MutexLock lock(state_->shared->mutex);
    if (state_->shared->submitted - state_->shared->finished >=
        state_->depth) {
      return queue_full();
    }
  }
  // lint:endregion(no-alloc)
  auto resolved = state_->shared->source->resolve(request);
  if (!resolved.ok()) return resolved.status();
  const auto ticket = try_submit_resolved(std::move(resolved).value());
  if (!ticket) return queue_full();
  return *ticket;
}

chronos::Result<std::uint64_t> RangingSession::submit(
    const chronos::RangingRequest& request) {
  CHRONOS_EXPECTS(state_ != nullptr, "submit() on an invalid session");
  auto resolved = state_->shared->source->resolve(request);
  if (!resolved.ok()) return resolved.status();
  return submit_resolved(std::move(resolved).value());
}

std::optional<std::uint64_t> RangingSession::try_submit_resolved(
    const ResolvedRequest& request) {
  CHRONOS_EXPECTS(state_ != nullptr, "try_submit() on an invalid session");
  const auto ticket = claim_ticket_if_room();
  if (!ticket) return std::nullopt;
  // Local admission: the ticket addresses its own split stream.
  enqueue_one(*ticket, *ticket, request);
  return ticket;
}

std::optional<std::uint64_t> RangingSession::try_submit_resolved_stream(
    const ResolvedRequest& request, std::uint64_t stream_index) {
  CHRONOS_EXPECTS(state_ != nullptr,
                  "try_submit_resolved_stream() on an invalid session");
  const auto ticket = claim_ticket_if_room();
  if (!ticket) return std::nullopt;
  // Sharded admission: the caller owns the global stream space.
  enqueue_one(*ticket, stream_index, request);
  return ticket;
}

std::optional<std::uint64_t> RangingSession::claim_ticket_if_room() {
  auto& shared = *state_->shared;
  // Admission itself is allocation-free (see try_submit): check + ticket
  // claim touch only counters under the lock.
  // lint:region(no-alloc)
  chronos::MutexLock lock(shared.mutex);
  if (shared.submitted - shared.finished >= state_->depth) {
    return std::nullopt;
  }
  return shared.submitted++;
  // lint:endregion(no-alloc)
}

void RangingSession::enqueue_one(std::uint64_t ticket,
                                 std::uint64_t stream_index,
                                 const ResolvedRequest& request) {
  auto payload = state_->shared;
  (void)state_->pool->submit([payload, ticket, stream_index, request]() {
    complete(payload, ticket, range_one(*payload, stream_index, request));
  });
}

std::uint64_t RangingSession::submit_resolved(const ResolvedRequest& request) {
  CHRONOS_EXPECTS(state_ != nullptr, "submit() on an invalid session");
  auto& shared = *state_->shared;
  std::uint64_t ticket = 0;
  {
    chronos::MutexLock lock(shared.mutex);
    shared.cv.wait(shared.mutex, [&]() CHRONOS_REQUIRES(shared.mutex) {
      return shared.submitted - shared.finished < state_->depth;
    });
    ticket = shared.submitted++;
  }
  auto payload = state_->shared;
  (void)state_->pool->submit([payload, ticket, request]() {
    complete(payload, ticket, range_one(*payload, ticket, request));
  });
  return ticket;
}

std::uint64_t RangingSession::submit_resolved_group(
    std::span<const ResolvedRequest> requests) {
  CHRONOS_EXPECTS(state_ != nullptr,
                  "submit_resolved_group() on an invalid session");
  CHRONOS_EXPECTS(!requests.empty(),
                  "submit_resolved_group() needs at least one request");
  CHRONOS_EXPECTS(requests.size() <= state_->depth,
                  "group larger than queue depth would never admit");
  auto& shared = *state_->shared;
  std::uint64_t first = 0;
  {
    chronos::MutexLock lock(shared.mutex);
    shared.cv.wait(shared.mutex, [&]() CHRONOS_REQUIRES(shared.mutex) {
      return shared.submitted - shared.finished + requests.size() <=
             state_->depth;
    });
    first = shared.submitted;
    shared.submitted += requests.size();
  }
  auto payload = state_->shared;
  std::vector<ResolvedRequest> group(requests.begin(), requests.end());
  (void)state_->pool->submit([payload, first, group = std::move(group)]() {
    auto results = range_group(*payload, first, group);
    // Completion happens per ticket (not atomically for the group) so
    // in-order collectors wake as early as possible; depth accounting only
    // needs `finished` to be monotone.
    for (std::size_t j = 0; j < results.size(); ++j) {
      complete(payload, first + static_cast<std::uint64_t>(j),
               std::move(results[j]));
    }
  });
  return first;
}

std::uint64_t RangingSession::push_failed(chronos::Status status) {
  CHRONOS_EXPECTS(state_ != nullptr, "push_failed() on an invalid session");
  CHRONOS_EXPECTS(!status.ok(), "push_failed() needs a non-ok status");
  auto& shared = *state_->shared;
  RangingResult result;
  result.status = std::move(status);
  chronos::MutexLock lock(shared.mutex);
  const auto ticket = shared.submitted++;
  shared.done.emplace(ticket, std::move(result));
  ++shared.finished;
  shared.cv.notify_all();
  return ticket;
}

std::size_t RangingSession::submitted() const {
  CHRONOS_EXPECTS(state_ != nullptr, "submitted() on an invalid session");
  chronos::MutexLock lock(state_->shared->mutex);
  return state_->shared->submitted;
}

std::size_t RangingSession::in_flight() const {
  CHRONOS_EXPECTS(state_ != nullptr, "in_flight() on an invalid session");
  chronos::MutexLock lock(state_->shared->mutex);
  return state_->shared->submitted - state_->shared->finished;
}

std::size_t RangingSession::collected() const {
  CHRONOS_EXPECTS(state_ != nullptr, "collected() on an invalid session");
  chronos::MutexLock lock(state_->shared->mutex);
  return state_->shared->collected;
}

bool RangingSession::all_done() const {
  CHRONOS_EXPECTS(state_ != nullptr, "all_done() on an invalid session");
  chronos::MutexLock lock(state_->shared->mutex);
  return state_->shared->finished == state_->shared->submitted;
}

void RangingSession::wait_all() const {
  CHRONOS_EXPECTS(state_ != nullptr, "wait_all() on an invalid session");
  auto& shared = *state_->shared;
  chronos::MutexLock lock(shared.mutex);
  shared.cv.wait(shared.mutex, [&]() CHRONOS_REQUIRES(shared.mutex) {
    return shared.finished == shared.submitted;
  });
}

bool RangingSession::next_ready() const {
  CHRONOS_EXPECTS(state_ != nullptr, "next_ready() on an invalid session");
  chronos::MutexLock lock(state_->shared->mutex);
  return state_->shared->done.contains(state_->shared->collected);
}

RangingResult RangingSession::next() {
  CHRONOS_EXPECTS(state_ != nullptr, "next() on an invalid session");
  auto& shared = *state_->shared;
  chronos::MutexLock lock(shared.mutex);
  CHRONOS_EXPECTS(shared.collected < shared.submitted,
                  "next() with every submitted result already collected");
  const auto ticket = shared.collected;
  shared.cv.wait(shared.mutex, [&]() CHRONOS_REQUIRES(shared.mutex) {
    return shared.done.contains(ticket);
  });
  auto node = shared.done.extract(ticket);
  ++shared.collected;
  // A slot may have freed for a blocked submit(); results leaving the
  // buffer never free slots (depth bounds unfinished work), but waking
  // submitters here is harmless and keeps the logic obviously live.
  shared.cv.notify_all();
  return std::move(node.mapped());
}

std::vector<RangingResult> RangingSession::drain() {
  CHRONOS_EXPECTS(state_ != nullptr, "drain() on an invalid session");
  std::uint64_t target = 0;
  {
    chronos::MutexLock lock(state_->shared->mutex);
    target = state_->shared->submitted;
  }
  std::vector<RangingResult> out;
  out.reserve(static_cast<std::size_t>(target));
  while (true) {
    {
      chronos::MutexLock lock(state_->shared->mutex);
      if (state_->shared->collected >= target) break;
    }
    out.push_back(next());
  }
  return out;
}

RangingSession open_ranging_session(
    std::shared_ptr<WorkerPool> pool, std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration, mathx::Rng& rng,
    std::size_t queue_depth, const chronos::RetryPolicy& retry) {
  // One fork on kBatchStreamTag — the same single rng advancement every
  // ingestion path performs — then adopt it.
  return open_ranging_session_sharded(
      std::move(pool), std::move(source), std::move(pipeline),
      std::move(calibration), rng.fork(kBatchStreamTag), queue_depth, retry);
}

RangingSession open_ranging_session_sharded(
    std::shared_ptr<WorkerPool> pool, std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration,
    const mathx::Rng& base_stream, std::size_t queue_depth,
    const chronos::RetryPolicy& retry) {
  CHRONOS_EXPECTS(pool != nullptr, "a session needs a worker pool");
  CHRONOS_EXPECTS(source != nullptr && pipeline != nullptr &&
                      calibration != nullptr,
                  "a session needs a source, pipeline, and calibration");
  CHRONOS_EXPECTS(queue_depth >= 1, "queue depth must be >= 1");
  CHRONOS_EXPECTS(retry.max_attempts >= 1, "max_attempts must be >= 1");

  auto state = std::make_shared<RangingSession::State>();
  state->shared = std::make_shared<Shared>(base_stream, std::move(source),
                                           std::move(pipeline),
                                           std::move(calibration), retry);
  state->pool = std::move(pool);
  state->depth = queue_depth;

  RangingSession session;
  session.state_ = std::move(state);
  return session;
}

std::size_t ranging_solve_group(std::size_t n_requests, std::size_t threads) {
  // 8 RHS per panel is where the measured per-RHS gain of the multi-RHS
  // FISTA path flattens out (plan lookup + workspace growth are fully
  // amortised); wider groups only hurt parallel load balance.
  constexpr std::size_t kMaxGroup = 8;
  if (threads <= 1) return kMaxGroup;
  return std::min(kMaxGroup,
                  std::max<std::size_t>(1, n_requests / (threads * 4)));
}

}  // namespace chronos::core
