#include "core/profile.hpp"

#include <algorithm>
#include <cmath>

#include "mathx/contracts.hpp"

namespace chronos::core {

MultipathProfile extract_profile(const SparseSolveResult& solution,
                                 const ProfileOptions& opts) {
  CHRONOS_EXPECTS(!solution.coefficients.empty(), "empty sparse solution");
  CHRONOS_EXPECTS(opts.noise_floor_fraction >= 0.0 &&
                      opts.noise_floor_fraction < 1.0,
                  "noise floor fraction must be in [0,1)");

  MultipathProfile profile;
  profile.grid = solution.grid;
  profile.magnitudes.resize(solution.coefficients.size());
  double max_mag = 0.0;
  for (std::size_t i = 0; i < solution.coefficients.size(); ++i) {
    profile.magnitudes[i] = std::abs(solution.coefficients[i]);
    max_mag = std::max(max_mag, profile.magnitudes[i]);
  }
  if (max_mag <= 0.0) return profile;  // silent profile, no peaks

  const double floor = max_mag * opts.noise_floor_fraction;
  const auto merge_bins = static_cast<std::size_t>(
      std::max(1.0, opts.merge_gap_s / solution.grid.step_s));

  // Scan for clusters of active bins, merging clusters separated by fewer
  // than merge_bins silent bins.
  std::vector<ProfilePeak> peaks;
  std::size_t i = 0;
  const std::size_t m = profile.magnitudes.size();
  while (i < m) {
    if (profile.magnitudes[i] <= floor) {
      ++i;
      continue;
    }
    ProfilePeak peak;
    peak.first_bin = i;
    double weighted_delay = 0.0;
    std::size_t silent_run = 0;
    std::size_t j = i;
    for (; j < m; ++j) {
      if (profile.magnitudes[j] > floor) {
        silent_run = 0;
        peak.last_bin = j;
        peak.energy += profile.magnitudes[j];
        weighted_delay += profile.magnitudes[j] * profile.grid.delay_at(j);
        peak.amplitude = std::max(peak.amplitude, profile.magnitudes[j]);
      } else {
        if (++silent_run >= merge_bins) break;
      }
    }
    peak.delay_s = weighted_delay / peak.energy;
    peaks.push_back(peak);
    i = j + 1;
  }

  profile.peaks = std::move(peaks);
  return profile;
}

std::optional<ProfilePeak> first_peak(const MultipathProfile& profile,
                                      double relative_threshold) {
  CHRONOS_EXPECTS(relative_threshold > 0.0 && relative_threshold <= 1.0,
                  "relative threshold must be in (0,1]");
  if (profile.peaks.empty()) return std::nullopt;
  double strongest = 0.0;
  for (const auto& p : profile.peaks) strongest = std::max(strongest, p.amplitude);
  for (const auto& p : profile.peaks) {
    if (p.amplitude >= relative_threshold * strongest) return p;
  }
  return std::nullopt;
}

std::size_t dominant_peak_count(const MultipathProfile& profile,
                                double relative_threshold) {
  CHRONOS_EXPECTS(relative_threshold > 0.0 && relative_threshold <= 1.0,
                  "relative threshold must be in (0,1]");
  double strongest = 0.0;
  for (const auto& p : profile.peaks) strongest = std::max(strongest, p.amplitude);
  std::size_t count = 0;
  for (const auto& p : profile.peaks) {
    if (p.amplitude >= relative_threshold * strongest) ++count;
  }
  return count;
}

}  // namespace chronos::core
