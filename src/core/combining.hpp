// Two-way CSI combining: CFO / LO-phase cancellation (paper §7) and the
// Intel 5300 2.4 GHz quadrant fix (§11 footnote 5).
//
// The forward CSI carries phase error  +(2*pi*df*t + phi_lo); the reverse
// CSI of the ACK carries the *negated* error (roles flip). Multiplying the
// interpolated zero-subcarrier values cancels both, leaving the squared
// channel h^2 whose profile's first peak sits at u = 2*tau.
//
// On 2.4 GHz the firmware reports phase only modulo pi/2, so each
// direction is raised to the 4th power *before* the product (4*(pi/2) = 2*pi
// erases the ambiguity); the combined value is then h^8 and its NDFT row
// must spin at 4*f_i on the u = 2*tau axis. We therefore tag every combined
// band with its per-direction exponent and effective row frequency.
#pragma once

#include <complex>
#include <vector>

#include "phy/band_plan.hpp"
#include "phy/csi.hpp"

namespace chronos::core {

struct CombinedBand {
  phy::WifiBand band;
  /// Averaged combined channel value (h^2 at 5 GHz, h^8 at 2.4 GHz), after
  /// optional normalisation and calibration.
  std::complex<double> value;
  /// Frequency this band's NDFT row rotates at on the u = 2*tau axis:
  /// f_i at 5 GHz, 4*f_i at 2.4 GHz.
  double row_freq_hz = 0.0;
  /// Per-direction exponent applied before the product (1 or 4).
  int direction_exponent = 1;
  double snr_db = 0.0;
  /// Mean ToA slope (tof + detection delay) across forward captures [s];
  /// feeds the Fig 7c detection-delay histogram.
  double toa_slope_s = 0.0;
};

/// How per-band magnitudes are conditioned before the sparse inversion.
enum class Normalization {
  /// Keep raw magnitudes. Physically honest in simulation, but real CSI
  /// magnitudes are not comparable across bands (AGC, chain gains).
  kNone,
  /// Force unit magnitude (phase-only stitching). Simple, but gives a
  /// deeply-faded band's pure-noise phase the same authority as a strong
  /// band's — falls apart at long range.
  kUnitModulus,
  /// Divide each direction's zero-subcarrier value by its band's RMS
  /// subcarrier magnitude — what AGC-scaled CSI actually provides. A faded
  /// center subcarrier then carries naturally little weight while strong
  /// bands dominate, which is what keeps NLOS profiles clean. Default.
  kBandAgc,
};

struct CombiningConfig {
  /// Multiply forward and reverse measurements (the §7 trick). Turning this
  /// off keeps only the forward channel (exponent still applied) — used by
  /// the ablation bench to demonstrate why one-way stitching fails.
  bool two_way = true;
  /// Apply the h^4-per-direction quadrant fix on 2.4 GHz bands.
  bool quirk_fix = true;
  Normalization normalization = Normalization::kBandAgc;
  /// Magnitude cap after normalisation: the quadrant fix raises 2.4 GHz
  /// values to the 8th power, which would let a constructive band explode.
  double magnitude_cap = 2.0;
};

/// Per-band unit-modulus phase corrections that absorb the reciprocity
/// constant kappa and hardware group delays (§7 observation 2). Built once
/// against a known-distance measurement (see core/calibration.hpp); an
/// empty table is a no-op.
struct CalibrationTable {
  /// correction[i] multiplies the combined value of band i (in sweep band
  /// order). Must be empty or match the sweep's band count.
  std::vector<std::complex<double>> correction;

  /// Mean offset of the subcarrier-slope ToA against true time-of-flight,
  /// measured at calibration: dominated by the packet-detection pipeline
  /// latency. Ranging uses it to gate the direct-path search to a +-tens-
  /// of-ns window, which deterministically rejects the 50 ns lattice
  /// ghosts of the 20 MHz channel grid.
  double toa_bias_s = 0.0;
  bool has_toa_bias = false;
  /// SNR at which the calibration was captured. The mean detection delay is
  /// SNR-dependent (weak signals take longer to cross the energy
  /// threshold), so ranging compensates the gate center by the detection
  /// model's expected-delay difference between field and calibration SNR.
  double calibration_snr_db = 0.0;

  bool empty() const { return correction.empty(); }
};

/// Interpolates every capture to its zero subcarrier, applies exponents,
/// combines forward/reverse, averages captures, and applies calibration.
/// Returns one CombinedBand per band in sweep order.
std::vector<CombinedBand> combine_sweep(const phy::SweepMeasurement& sweep,
                                        const CombiningConfig& config = {},
                                        const CalibrationTable& calibration = {});

/// The scale factor between the profile's u axis and physical ToF:
/// u = scale * tau. 2 for two-way combining, 1 for one-way.
double delay_axis_scale(const CombiningConfig& config);

}  // namespace chronos::core
