// A fixed-size, futures-based worker pool.
//
// The execution substrate of the batched ranging runtime: a small set of
// long-lived threads drain a FIFO of type-erased jobs, and every submission
// returns a std::future so callers can collect results (or rethrown
// exceptions) in a deterministic order of their own choosing. The pool
// itself imposes no ordering on *execution* — determinism is the job
// author's responsibility (see core/batch.hpp, which derives one
// mathx::Rng::split stream per request so results are independent of
// scheduling).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "mathx/annotations.hpp"

namespace chronos::core {

class WorkerPool {
 public:
  /// Spawns exactly `threads` workers (>= 1 enforced). The pool never grows
  /// or shrinks; sizing happens once, at construction.
  explicit WorkerPool(std::size_t threads);

  /// Drains the queue (pending jobs still run) and joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by the job are captured and rethrown from future::get(). Safe to call
  /// from any thread, including from inside a running job (jobs must not
  /// block on futures of jobs queued behind them, though — classic
  /// fixed-pool deadlock).
  template <typename F, typename R = std::invoke_result_t<F&>>
  std::future<R> submit(F fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Pool size that saturates this machine: hardware_concurrency, with a
  /// floor of 1 for environments where it reports 0.
  static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> job) CHRONOS_EXCLUDES(mutex_);
  void worker_loop() CHRONOS_EXCLUDES(mutex_);

  /// Touched only by the constructor (spawn) and destructor (join);
  /// workers never inspect the thread table, so it needs no lock.
  std::vector<std::thread> workers_;
  chronos::Mutex mutex_;
  chronos::CondVar wakeup_;
  std::queue<std::function<void()>> queue_ CHRONOS_GUARDED_BY(mutex_);
  bool stopping_ CHRONOS_GUARDED_BY(mutex_) = false;
};

/// Maps `fn(i)` over i in [0, n) on an existing (persistent) pool,
/// returning results in index order. Every call blocks until its own jobs
/// finish; the first exception (by index) is rethrown after they drain, so
/// no job outlives fn's captures. Reusing one long-lived pool across calls
/// keeps the workers' warmed thread-local state (e.g. NdftWorkspace) —
/// the dispatch scaffolding of the persistent engine session
/// (ChronosEngine::locate_batch, core/batch.cpp).
template <typename Fn>
auto parallel_map_on(WorkerPool& pool, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(n);
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
  }
  // Drain EVERY future before rethrowing: on a persistent pool there is no
  // scope-exit join, so leaving jobs queued past this frame would let them
  // touch fn's captures after the caller unwound.
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      out[i] = futures[i].get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

/// Convenience variant owning a transient pool: `threads <= 1` runs inline
/// on the caller (no pool); otherwise a fixed-size pool is spawned for this
/// call and joined before returning. Library users without a persistent
/// session reach for this; the engine session path uses parallel_map_on.
template <typename Fn>
auto parallel_map(int threads, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  if (threads <= 1) {
    std::vector<R> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  WorkerPool pool(static_cast<std::size_t>(threads));
  return parallel_map_on(pool, n, std::move(fn));
}

}  // namespace chronos::core
