// A fixed-size, futures-based worker pool.
//
// The execution substrate of the batched ranging runtime: a small set of
// long-lived threads drain a FIFO of type-erased jobs, and every submission
// returns a std::future so callers can collect results (or rethrown
// exceptions) in a deterministic order of their own choosing. The pool
// itself imposes no ordering on *execution* — determinism is the job
// author's responsibility (see core/batch.hpp, which derives one
// mathx::Rng::split stream per request so results are independent of
// scheduling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace chronos::core {

class WorkerPool {
 public:
  /// Spawns exactly `threads` workers (>= 1 enforced). The pool never grows
  /// or shrinks; sizing happens once, at construction.
  explicit WorkerPool(std::size_t threads);

  /// Drains the queue (pending jobs still run) and joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by the job are captured and rethrown from future::get(). Safe to call
  /// from any thread, including from inside a running job (jobs must not
  /// block on futures of jobs queued behind them, though — classic
  /// fixed-pool deadlock).
  template <typename F, typename R = std::invoke_result_t<F&>>
  std::future<R> submit(F fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Pool size that saturates this machine: hardware_concurrency, with a
  /// floor of 1 for environments where it reports 0.
  static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wakeup_;
  bool stopping_ = false;
};

/// Maps `fn(i)` over i in [0, n), returning results in index order.
/// `threads <= 1` runs inline on the caller (no pool); otherwise a
/// fixed-size pool fans the calls out and the first exception (by index)
/// is rethrown after the pool drains, so no job outlives fn's captures.
/// The shared dispatch scaffolding of the batched runtime entry points
/// (core/batch.cpp, ChronosEngine::locate_batch).
template <typename Fn>
auto parallel_map(int threads, std::size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  {
    WorkerPool pool(static_cast<std::size_t>(threads));
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
    }
    for (std::size_t i = 0; i < n; ++i) out[i] = futures[i].get();
  }
  return out;
}

}  // namespace chronos::core
