#include "core/batch.hpp"

#include <algorithm>
#include <chrono>

#include "core/worker_pool.hpp"
#include "mathx/contracts.hpp"

namespace chronos::core {

namespace {
/// fork() tag for the per-batch base stream ("batch" in ASCII).
constexpr std::uint64_t kBatchStreamTag = 0x6261746368ull;
}  // namespace

int resolve_batch_threads(const BatchOptions& options,
                          std::size_t n_requests) {
  CHRONOS_EXPECTS(options.threads >= 0, "batch threads must be >= 0");
  std::size_t n = options.threads == 0
                      ? WorkerPool::default_thread_count()
                      : static_cast<std::size_t>(options.threads);
  n = std::min(n, std::max<std::size_t>(1, n_requests));
  return static_cast<int>(n);
}

BatchResult run_ranging_batch(const sim::LinkSimulator& link,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const RangingRequest> requests,
                              mathx::Rng& rng, const BatchOptions& options) {
  // One fork regardless of batch size: the caller's stream advances the
  // same way whether it batches 1 request or 10^6.
  const mathx::Rng base = rng.fork(kBatchStreamTag);

  BatchResult out;
  out.threads_used = resolve_batch_threads(options, requests.size());
  const auto t0 = std::chrono::steady_clock::now();

  // Request i is a pure function of (link, pipeline, calibration,
  // requests[i], base.split(i)): scheduling cannot leak into results.
  auto process = [&](std::size_t i) {
    const RangingRequest& req = requests[i];
    mathx::Rng child = base.split(static_cast<std::uint64_t>(i));
    const auto sweep = link.simulate_sweep(req.tx, req.tx_antenna, req.rx,
                                           req.rx_antenna, child);
    return pipeline.estimate(sweep, calibration);
  };

  out.results = parallel_map(out.threads_used, requests.size(), process);

  out.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace chronos::core
