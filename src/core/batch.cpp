#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <utility>

#include "core/worker_pool.hpp"
#include "mathx/contracts.hpp"

namespace chronos::core {

namespace {
/// fork() tag for the per-batch base stream ("batch" in ASCII). Shared by
/// the synchronous and async entry points so they advance the caller's rng
/// identically.
constexpr std::uint64_t kBatchStreamTag = 0x6261746368ull;
}  // namespace

int resolve_batch_threads(const BatchOptions& options,
                          std::size_t n_requests) {
  CHRONOS_EXPECTS(options.threads >= 0, "batch threads must be >= 0");
  std::size_t n = options.threads == 0
                      ? WorkerPool::default_thread_count()
                      : static_cast<std::size_t>(options.threads);
  n = std::min(n, std::max<std::size_t>(1, n_requests));
  return static_cast<int>(n);
}

namespace {
/// What the per-request jobs share: an immutable copy of the requests, the
/// split-stream parent, and owning references on everything a job touches
/// (so a handle stays collectable even after the issuing engine dies).
/// Deliberately does NOT reference the pool — a worker thread may be the
/// one dropping the last payload reference, and it must never end up
/// destroying (and thus self-joining) its own pool.
struct BatchPayload {
  const mathx::Rng base;
  const std::vector<RangingRequest> requests;
  const std::shared_ptr<const SweepSource> source;
  const std::shared_ptr<const RangingPipeline> pipeline;
  const std::shared_ptr<const CalibrationTable> calibration;

  BatchPayload(mathx::Rng b, std::span<const RangingRequest> reqs,
               std::shared_ptr<const SweepSource> src,
               std::shared_ptr<const RangingPipeline> pipe,
               std::shared_ptr<const CalibrationTable> cal)
      : base(std::move(b)),
        requests(reqs.begin(), reqs.end()),
        source(std::move(src)),
        pipeline(std::move(pipe)),
        calibration(std::move(cal)) {}
};
}  // namespace

struct BatchHandle::State {
  std::shared_ptr<WorkerPool> pool;  ///< keeps the workers alive (caller side)
  std::shared_ptr<const BatchPayload> payload;
  std::vector<std::future<RangingResult>> futures;
  std::chrono::steady_clock::time_point t0;
  int threads_used = 1;

  State(std::shared_ptr<WorkerPool> p,
        std::shared_ptr<const BatchPayload> pay)
      : pool(std::move(p)),
        payload(std::move(pay)),
        t0(std::chrono::steady_clock::now()) {}
};

BatchHandle::BatchHandle(BatchHandle&&) noexcept = default;
BatchHandle& BatchHandle::operator=(BatchHandle&&) noexcept = default;
BatchHandle::~BatchHandle() = default;

std::size_t BatchHandle::size() const {
  return state_ ? state_->payload->requests.size() : 0;
}

bool BatchHandle::ready() const {
  CHRONOS_EXPECTS(state_ != nullptr, "ready() on an invalid BatchHandle");
  for (const auto& f : state_->futures) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      return false;
    }
  }
  return true;
}

void BatchHandle::wait() const {
  CHRONOS_EXPECTS(state_ != nullptr, "wait() on an invalid BatchHandle");
  for (const auto& f : state_->futures) f.wait();
}

BatchResult BatchHandle::get() {
  CHRONOS_EXPECTS(state_ != nullptr, "get() on an invalid BatchHandle");
  const auto state = std::move(state_);

  BatchResult out;
  out.threads_used = state->threads_used;
  out.results.reserve(state->futures.size());
  // Drain every future even past a failure (so the pool is quiescent with
  // respect to this batch), then rethrow the first failure by index.
  std::exception_ptr first_error;
  for (auto& f : state->futures) {
    try {
      out.results.push_back(f.get());
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      out.results.push_back({});
    }
  }
  out.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state->t0)
          .count();
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

BatchHandle submit_ranging_batch(
    std::shared_ptr<WorkerPool> pool,
    std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration,
    std::span<const RangingRequest> requests, mathx::Rng& rng) {
  CHRONOS_EXPECTS(pool != nullptr, "submit_ranging_batch needs a pool");
  CHRONOS_EXPECTS(source != nullptr && pipeline != nullptr &&
                      calibration != nullptr,
                  "submit_ranging_batch needs a source, pipeline, and "
                  "calibration");
  // One fork regardless of batch size: the caller's stream advances the
  // same way whether it batches 1 request or 10^6, sync or async.
  auto payload = std::make_shared<const BatchPayload>(
      rng.fork(kBatchStreamTag), requests, std::move(source),
      std::move(pipeline), std::move(calibration));
  auto state =
      std::make_unique<BatchHandle::State>(std::move(pool), payload);
  const std::size_t n = payload->requests.size();
  state->threads_used = static_cast<int>(
      std::min(state->pool->size(), std::max<std::size_t>(1, n)));

  // Request i is a pure function of (source, pipeline, calibration,
  // requests[i], base.split(i)): scheduling cannot leak into results. Jobs
  // own everything they touch through the shared payload.
  state->futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    state->futures.push_back(state->pool->submit([payload, i]() {
      mathx::Rng child = payload->base.split(static_cast<std::uint64_t>(i));
      const RangingRequest& req = payload->requests[i];
      const auto sweep = payload->source->sweep_for(req, child);
      return payload->pipeline->estimate(sweep, *payload->calibration);
    }));
  }

  BatchHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

BatchResult run_ranging_batch(const SweepSource& source,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const RangingRequest> requests,
                              mathx::Rng& rng, const BatchOptions& options,
                              std::shared_ptr<WorkerPool> pool) {
  const int threads = resolve_batch_threads(options, requests.size());
  const mathx::Rng base = rng.fork(kBatchStreamTag);

  BatchResult out;
  const auto t0 = std::chrono::steady_clock::now();

  // Request i is a pure function of (source, pipeline, calibration,
  // requests[i], base.split(i)): scheduling cannot leak into results. The
  // call is synchronous, so jobs borrow the caller's span and objects
  // directly — no per-request copies (the async path pays those instead).
  auto process = [&](std::size_t i) {
    mathx::Rng child = base.split(static_cast<std::uint64_t>(i));
    const auto sweep = source.sweep_for(requests[i], child);
    return pipeline.estimate(sweep, calibration);
  };

  if (threads <= 1) {
    // Inline on the calling thread: the sequential split-stream reference
    // the determinism tests compare every parallel run against.
    out.threads_used = 1;
    out.results.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      out.results.push_back(process(i));
    }
  } else {
    if (pool == nullptr) {
      pool = std::make_shared<WorkerPool>(static_cast<std::size_t>(threads));
    }
    out.threads_used = static_cast<int>(
        std::min(pool->size(), std::max<std::size_t>(1, requests.size())));
    out.results = parallel_map_on(*pool, requests.size(), process);
  }

  out.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace chronos::core
