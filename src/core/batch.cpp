#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <utility>

#include "core/retry.hpp"
#include "core/worker_pool.hpp"
#include "mathx/contracts.hpp"

namespace chronos::core {

int resolve_batch_threads(const BatchOptions& options,
                          std::size_t n_requests) {
  CHRONOS_EXPECTS(options.threads >= 0, "batch threads must be >= 0");
  std::size_t n = options.threads == 0
                      ? WorkerPool::default_thread_count()
                      : static_cast<std::size_t>(options.threads);
  n = std::min(n, std::max<std::size_t>(1, n_requests));
  return static_cast<int>(n);
}

struct BatchHandle::State {
  RangingSession session;
  std::chrono::steady_clock::time_point t0;
  int threads_used = 1;

  // Wall-clock start for the wall_time_s diagnostic; never feeds a
  // measured result. lint:allow(nondeterminism)
  explicit State(RangingSession s)
      : session(std::move(s)), t0(std::chrono::steady_clock::now()) {}
};

BatchHandle::BatchHandle(BatchHandle&&) noexcept = default;
BatchHandle& BatchHandle::operator=(BatchHandle&&) noexcept = default;
BatchHandle::~BatchHandle() = default;

std::size_t BatchHandle::size() const {
  return state_ ? state_->session.submitted() : 0;
}

bool BatchHandle::ready() const {
  CHRONOS_EXPECTS(state_ != nullptr, "ready() on an invalid BatchHandle");
  return state_->session.all_done();
}

void BatchHandle::wait() const {
  CHRONOS_EXPECTS(state_ != nullptr, "wait() on an invalid BatchHandle");
  state_->session.wait_all();
}

BatchResult BatchHandle::get() {
  CHRONOS_EXPECTS(state_ != nullptr, "get() on an invalid BatchHandle");
  const auto state = std::move(state_);

  BatchResult out;
  out.threads_used = state->threads_used;
  out.results = state->session.drain();
  // Diagnostic only: results came out of drain() above. lint:allow(nondeterminism)
  out.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    state->t0)
          .count();
  return out;
}

BatchHandle make_batch_handle(RangingSession session, int threads_used) {
  auto state = std::make_unique<BatchHandle::State>(std::move(session));
  state->threads_used = threads_used;
  BatchHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

BatchHandle submit_ranging_batch(
    std::shared_ptr<WorkerPool> pool,
    std::shared_ptr<const SweepSource> source,
    std::shared_ptr<const RangingPipeline> pipeline,
    std::shared_ptr<const CalibrationTable> calibration,
    std::span<const ResolvedRequest> requests, mathx::Rng& rng,
    const chronos::RetryPolicy& retry) {
  CHRONOS_EXPECTS(pool != nullptr, "submit_ranging_batch needs a pool");
  CHRONOS_EXPECTS(source != nullptr && pipeline != nullptr &&
                      calibration != nullptr,
                  "submit_ranging_batch needs a source, pipeline, and "
                  "calibration");
  const std::size_t n = requests.size();
  const std::size_t pool_size = pool->size();

  // A batch is a session with no admission bound: every request is
  // enqueued up front (the caller opted into batch semantics, so the
  // submission side needs no flow control), ticket i == request index i,
  // and the one fork() below advances the caller's stream exactly like the
  // synchronous path.
  auto state = std::make_unique<BatchHandle::State>(open_ranging_session(
      std::move(pool), std::move(source), std::move(pipeline),
      std::move(calibration), rng,
      std::numeric_limits<std::size_t>::max(), retry));
  state->threads_used = static_cast<int>(
      std::min(pool_size, std::max<std::size_t>(1, n)));
  // Admit in groups: each group becomes one pool job draining a multi-RHS
  // solver panel (see submit_resolved_group). Tickets stay consecutive, so
  // ticket i == request index i exactly as before, and every result is
  // bit-identical to one-by-one admission.
  const std::size_t group = ranging_solve_group(n, pool_size);
  for (std::size_t lo = 0; lo < n; lo += group) {
    const std::size_t hi = std::min(n, lo + group);
    (void)state->session.submit_resolved_group(requests.subspan(lo, hi - lo));
  }

  BatchHandle handle;
  handle.state_ = std::move(state);
  return handle;
}

BatchResult run_ranging_batch(const SweepSource& source,
                              const RangingPipeline& pipeline,
                              const CalibrationTable& calibration,
                              std::span<const ResolvedRequest> requests,
                              mathx::Rng& rng, const BatchOptions& options,
                              std::shared_ptr<WorkerPool> pool,
                              std::span<const chronos::Status> prefailed) {
  CHRONOS_EXPECTS(prefailed.empty() || prefailed.size() == requests.size(),
                  "prefailed must be empty or match the request count");
  const int threads = resolve_batch_threads(options, requests.size());
  const mathx::Rng base = rng.fork(kBatchStreamTag);

  BatchResult out;
  // Wall-clock diagnostic (wall_time_s); results are a pure function of
  // the rng streams below. lint:allow(nondeterminism)
  const auto t0 = std::chrono::steady_clock::now();

  // Request i is a pure function of (source, pipeline, calibration,
  // requests[i], base.split(i)): scheduling cannot leak into results. The
  // call is synchronous, so jobs borrow the caller's span and objects
  // directly — no per-request copies (the async path pays those instead).
  // Backend failures land in the result's status; jobs never throw for
  // request-shaped reasons. Slots that failed upstream short-circuit
  // before the backend (and before their split stream) is touched.
  //
  // Requests are processed in groups so FISTA pipelines drain each group
  // through one RangingPipeline::estimate_batch (multi-RHS solver panel)
  // instead of paying per-request solve setup. Every slot's split stream,
  // failure routing, and estimate are bit-identical to per-request
  // processing — grouping is purely an amortisation.
  const std::size_t n = requests.size();
  auto process_group = [&](std::size_t lo, std::size_t hi) {
    std::vector<RangingResult> results(hi - lo);
    std::vector<phy::SweepMeasurement> sweeps;
    std::vector<std::size_t> slots;
    sweeps.reserve(hi - lo);
    slots.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      if (!prefailed.empty() && !prefailed[i].ok()) {
        results[i - lo].status = prefailed[i];
        continue;
      }
      mathx::Rng child = base.split(static_cast<std::uint64_t>(i));
      auto sweep = source.sweep_for(requests[i], child);
      if (!sweep.ok()) {
        results[i - lo].status = sweep.status();
        continue;
      }
      sweeps.push_back(std::move(sweep).value());
      slots.push_back(i - lo);
    }
    if (!sweeps.empty()) {
      auto estimates = pipeline.estimate_batch(sweeps, calibration);
      for (std::size_t k = 0; k < slots.size(); ++k) {
        results[slots[k]] = std::move(estimates[k]);
      }
    }
    // Retries ride per slot AFTER the shared panel: only failed slots pay
    // per-request retry solves; prefailed slots (non-retryable by
    // construction) return from finish_with_retries untouched, their split
    // streams still unused.
    for (std::size_t i = lo; i < hi; ++i) {
      if (!prefailed.empty() && !prefailed[i].ok()) continue;
      results[i - lo] = finish_with_retries(
          source, pipeline, calibration, requests[i],
          base.split(static_cast<std::uint64_t>(i)),
          std::move(results[i - lo]), options.retry);
    }
    return results;
  };
  const std::size_t group =
      ranging_solve_group(n, static_cast<std::size_t>(threads));

  if (threads <= 1) {
    // Inline on the calling thread: the sequential split-stream reference
    // the determinism tests compare every parallel run against.
    out.threads_used = 1;
    out.results.reserve(n);
    for (std::size_t lo = 0; lo < n; lo += group) {
      auto chunk = process_group(lo, std::min(n, lo + group));
      for (auto& result : chunk) out.results.push_back(std::move(result));
    }
  } else {
    if (pool == nullptr) {
      pool = std::make_shared<WorkerPool>(static_cast<std::size_t>(threads));
    }
    out.threads_used = static_cast<int>(
        std::min(pool->size(), std::max<std::size_t>(1, n)));
    const std::size_t n_groups = (n + group - 1) / group;
    auto chunks = parallel_map_on(*pool, n_groups, [&](std::size_t g) {
      const std::size_t lo = g * group;
      return process_group(lo, std::min(n, lo + group));
    });
    out.results.reserve(n);
    for (auto& chunk : chunks) {
      for (auto& result : chunk) out.results.push_back(std::move(result));
    }
  }

  // Diagnostic only; see above. lint:allow(nondeterminism)
  out.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace chronos::core
