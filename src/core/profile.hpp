// Multipath profiles and direct-path (first peak) extraction (paper §6).
//
// The sparse inverse-NDFT yields complex coefficients over the delay grid;
// L1 solutions concentrate each physical path into a small cluster of
// adjacent non-zero bins. This module groups bins into peaks, computes each
// peak's amplitude-weighted centroid delay, and identifies the direct path:
// the *earliest* peak whose amplitude is a meaningful fraction of the
// strongest peak (the shortest path need not be the strongest — in NLOS it
// rarely is).
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/ndft.hpp"

namespace chronos::core {

struct ProfilePeak {
  double delay_s = 0.0;    ///< amplitude-weighted centroid of the cluster
  double amplitude = 0.0;  ///< peak |p| within the cluster
  double energy = 0.0;     ///< sum of |p| across the cluster
  std::size_t first_bin = 0;
  std::size_t last_bin = 0;
};

struct MultipathProfile {
  DelayGrid grid;
  std::vector<double> magnitudes;   ///< |p| per grid bin
  std::vector<ProfilePeak> peaks;   ///< sorted by delay
};

struct ProfileOptions {
  /// Bins whose magnitude is below this fraction of the global maximum are
  /// treated as silence when clustering.
  double noise_floor_fraction = 0.05;
  /// Two clusters closer than this gap (in seconds) merge into one peak —
  /// L1 often splits one physical path across neighbouring bins.
  double merge_gap_s = 0.6e-9;
};

/// Clusters a sparse solution into a peak list.
MultipathProfile extract_profile(const SparseSolveResult& solution,
                                 const ProfileOptions& opts = {});

/// The direct path: earliest peak with amplitude >= threshold * strongest
/// peak amplitude. Returns nullopt for an empty profile.
std::optional<ProfilePeak> first_peak(const MultipathProfile& profile,
                                      double relative_threshold = 0.2);

/// Number of dominant peaks (amplitude >= threshold * strongest); the
/// paper's sparsity metric (Fig 7b reports mean 5.05, sigma 1.95 in NLOS).
std::size_t dominant_peak_count(const MultipathProfile& profile,
                                double relative_threshold = 0.2);

}  // namespace chronos::core
