// CSI trace serialization.
//
// Sweeps can be saved to and loaded from a line-oriented text format, which
// serves two purposes: (a) benches and examples can snapshot interesting
// workloads, and (b) traces captured from *real* hardware (e.g. the Linux
// 802.11n CSI Tool the paper builds on) can be converted to this format and
// fed through the identical pipeline — the estimation code cannot tell the
// difference.
//
// Format (one record per line, '#' comments ignored):
//   sweep <band_count> <sweep_duration_s>
//   band <index> <channel>
//   capture <band_index> <direction:f|r> <timestamp_s> <snr_db>
//           <re0> <im0> ... <re29> <im29>      (one physical line)
// Captures appear forward/reverse alternating, in band order.
#pragma once

#include <iosfwd>
#include <string>

#include "mathx/status.hpp"
#include "phy/csi.hpp"

namespace chronos::phy {

/// Writes a sweep to a stream. Throws std::invalid_argument on malformed
/// input sweeps (validated first).
void write_sweep(std::ostream& os, const SweepMeasurement& sweep);

/// Reads a sweep written by write_sweep — the Status-based parser for
/// untrusted input (API v2). Never throws for bad input:
///   * kBandMismatch    a band record names a channel outside the US band
///                      plan (e.g. a converter with a wrong frequency map);
///   * kMalformedSweep  every other structural violation — parse errors,
///                      truncated forward/reverse exchanges, non-finite
///                      values, wrong subcarrier counts, trailing garbage.
[[nodiscard]] chronos::Result<SweepMeasurement> try_read_sweep(
    std::istream& is);

/// Throwing wrapper around try_read_sweep (std::invalid_argument), for
/// tooling that treats a bad trace as fatal.
SweepMeasurement read_sweep(std::istream& is);

/// Convenience file wrappers. The try_ variant adds kMalformedSweep for an
/// unopenable file; the throwing ones throw std::invalid_argument.
[[nodiscard]] chronos::Result<SweepMeasurement> try_load_sweep(
    const std::string& path);
void save_sweep(const std::string& path, const SweepMeasurement& sweep);
SweepMeasurement load_sweep(const std::string& path);

}  // namespace chronos::phy
