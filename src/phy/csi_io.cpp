#include "phy/csi_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "mathx/contracts.hpp"
#include "phy/band_plan.hpp"

namespace chronos::phy {

namespace {
// Hard cap on the declared band count: the US plan has 35 bands, so any
// header beyond this is garbage (and, unchecked, a resize() driven by
// attacker-controlled input). Part of the parser-robustness contract —
// read_sweep must reject malformed input with std::invalid_argument, never
// crash, hang, or allocate unboundedly (tests/test_phy_csi_io_robustness).
constexpr std::size_t kMaxBands = 256;
}  // namespace

void write_sweep(std::ostream& os, const SweepMeasurement& sweep) {
  validate(sweep);
  os << "# chronos CSI sweep v1\n";
  os << "sweep " << sweep.bands.size() << ' '
     << std::setprecision(17) << sweep.sweep_duration_s << '\n';
  for (std::size_t bi = 0; bi < sweep.bands.size(); ++bi) {
    os << "band " << bi << ' '
       << sweep.bands[bi].front().forward.band.channel << '\n';
  }
  auto write_capture = [&os](std::size_t bi, const CsiMeasurement& m) {
    os << "capture " << bi << ' '
       << (m.direction == Direction::kForward ? 'f' : 'r') << ' '
       << std::setprecision(17) << m.timestamp_s << ' ' << m.snr_db;
    for (const auto& v : m.values) {
      os << ' ' << v.real() << ' ' << v.imag();
    }
    os << '\n';
  };
  for (std::size_t bi = 0; bi < sweep.bands.size(); ++bi) {
    for (const auto& cap : sweep.bands[bi]) {
      write_capture(bi, cap.forward);
      write_capture(bi, cap.reverse);
    }
  }
}

namespace {

/// Shorthand for the parser's rejection statuses.
[[nodiscard]] chronos::Status malformed(const std::string& message) {
  return {chronos::StatusCode::kMalformedSweep, message};
}

}  // namespace

[[nodiscard]] chronos::Result<SweepMeasurement> try_read_sweep(
    std::istream& is) {
  SweepMeasurement sweep;
  std::vector<WifiBand> bands;
  std::string line;
  bool have_header = false;

  // Forward measurements wait here until their reverse partner arrives.
  std::vector<CsiMeasurement> pending_forward;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;

    if (tag == "sweep") {
      if (have_header) return malformed("duplicate sweep header");
      std::size_t n = 0;
      ls >> n >> sweep.sweep_duration_s;
      if (ls.fail() || n == 0) return malformed("bad sweep header");
      if (n > kMaxBands) {
        return malformed("sweep header declares too many bands");
      }
      if (!std::isfinite(sweep.sweep_duration_s) ||
          sweep.sweep_duration_s <= 0.0) {
        return malformed("sweep duration must be finite and positive");
      }
      std::string extra;
      if (ls >> extra) return malformed("trailing garbage in sweep header");
      sweep.bands.resize(n);
      bands.resize(n);
      pending_forward.resize(n);
      have_header = true;
    } else if (tag == "band") {
      if (!have_header) return malformed("band record before sweep header");
      std::size_t idx = 0;
      int channel = 0;
      ls >> idx >> channel;
      if (ls.fail() || idx >= bands.size()) {
        return malformed("bad band record");
      }
      std::string extra;
      if (ls >> extra) return malformed("trailing garbage in band record");
      // A channel outside the plan is a *band mismatch*, not mere garbage:
      // it is the signature of a converter whose frequency map disagrees
      // with the US band plan the pipeline was built for.
      try {
        bands[idx] = band_by_channel(channel);
      } catch (const std::invalid_argument&) {
        return chronos::Status{
            chronos::StatusCode::kBandMismatch,
            "band record names channel " + std::to_string(channel) +
                ", which is not in the band plan"};
      }
    } else if (tag == "capture") {
      if (!have_header) return malformed("capture record before sweep header");
      std::size_t bi = 0;
      char dir = 'f';
      CsiMeasurement m;
      ls >> bi >> dir >> m.timestamp_s >> m.snr_db;
      if (ls.fail() || bi >= bands.size()) {
        return malformed("bad capture record");
      }
      if (dir != 'f' && dir != 'r') {
        return malformed("capture direction must be 'f' or 'r'");
      }
      if (!std::isfinite(m.timestamp_s) || !std::isfinite(m.snr_db)) {
        return malformed("capture timestamp/SNR must be finite");
      }
      m.band = bands[bi];
      m.direction = dir == 'f' ? Direction::kForward : Direction::kReverse;
      m.values.reserve(intel5300_subcarrier_indices().size());
      double re = 0.0, im = 0.0;
      while (ls >> re) {
        if ((ls >> im).fail()) {
          return malformed("capture has an odd or malformed CSI component");
        }
        if (!std::isfinite(re) || !std::isfinite(im)) {
          return malformed("CSI values must be finite");
        }
        m.values.emplace_back(re, im);
        if (m.values.size() > intel5300_subcarrier_indices().size()) {
          return malformed("capture carries more than 30 subcarrier values");
        }
      }
      // The loop must have stopped at end-of-line, not on a token that
      // failed to parse as a number (trailing garbage).
      if (!ls.eof()) return malformed("trailing garbage in capture record");
      if (m.values.size() != intel5300_subcarrier_indices().size()) {
        return malformed("capture must carry 30 subcarrier values");
      }

      if (m.direction == Direction::kForward) {
        if (!pending_forward[bi].values.empty()) {
          return malformed(
              "two forward captures without a reverse between them");
        }
        pending_forward[bi] = std::move(m);
      } else {
        if (pending_forward[bi].values.empty()) {
          return malformed(
              "truncated exchange: reverse capture without a forward "
              "partner");
        }
        sweep.bands[bi].push_back(
            {std::move(pending_forward[bi]), std::move(m)});
        pending_forward[bi] = CsiMeasurement{};
      }
    } else {
      return malformed("unknown record tag in CSI trace");
    }
  }
  if (!have_header) return malformed("stream contains no sweep header");
  for (const auto& pending : pending_forward) {
    if (!pending.values.empty()) {
      return malformed(
          "truncated exchange: forward capture without a reverse partner at "
          "end of stream");
    }
  }
  try {
    validate(sweep);
  } catch (const std::invalid_argument& e) {
    return malformed(e.what());
  }
  return sweep;
}

SweepMeasurement read_sweep(std::istream& is) {
  auto result = try_read_sweep(is);
  CHRONOS_EXPECTS(result.ok(), result.status().to_string());
  return std::move(result).value();
}

void save_sweep(const std::string& path, const SweepMeasurement& sweep) {
  std::ofstream os(path);
  CHRONOS_EXPECTS(os.good(), "cannot open file for writing: " + path);
  write_sweep(os, sweep);
  CHRONOS_EXPECTS(os.good(), "write failed: " + path);
}

[[nodiscard]] chronos::Result<SweepMeasurement> try_load_sweep(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) {
    return chronos::Status{chronos::StatusCode::kMalformedSweep,
                           "cannot open file for reading: " + path};
  }
  return try_read_sweep(is);
}

SweepMeasurement load_sweep(const std::string& path) {
  std::ifstream is(path);
  CHRONOS_EXPECTS(is.good(), "cannot open file for reading: " + path);
  return read_sweep(is);
}

}  // namespace chronos::phy
