#include "phy/csi_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "mathx/contracts.hpp"
#include "phy/band_plan.hpp"

namespace chronos::phy {

namespace {
// Hard cap on the declared band count: the US plan has 35 bands, so any
// header beyond this is garbage (and, unchecked, a resize() driven by
// attacker-controlled input). Part of the parser-robustness contract —
// read_sweep must reject malformed input with std::invalid_argument, never
// crash, hang, or allocate unboundedly (tests/test_phy_csi_io_robustness).
constexpr std::size_t kMaxBands = 256;
}  // namespace

void write_sweep(std::ostream& os, const SweepMeasurement& sweep) {
  validate(sweep);
  os << "# chronos CSI sweep v1\n";
  os << "sweep " << sweep.bands.size() << ' '
     << std::setprecision(17) << sweep.sweep_duration_s << '\n';
  for (std::size_t bi = 0; bi < sweep.bands.size(); ++bi) {
    os << "band " << bi << ' '
       << sweep.bands[bi].front().forward.band.channel << '\n';
  }
  auto write_capture = [&os](std::size_t bi, const CsiMeasurement& m) {
    os << "capture " << bi << ' '
       << (m.direction == Direction::kForward ? 'f' : 'r') << ' '
       << std::setprecision(17) << m.timestamp_s << ' ' << m.snr_db;
    for (const auto& v : m.values) {
      os << ' ' << v.real() << ' ' << v.imag();
    }
    os << '\n';
  };
  for (std::size_t bi = 0; bi < sweep.bands.size(); ++bi) {
    for (const auto& cap : sweep.bands[bi]) {
      write_capture(bi, cap.forward);
      write_capture(bi, cap.reverse);
    }
  }
}

SweepMeasurement read_sweep(std::istream& is) {
  SweepMeasurement sweep;
  std::vector<WifiBand> bands;
  std::string line;
  bool have_header = false;

  // Forward measurements wait here until their reverse partner arrives.
  std::vector<CsiMeasurement> pending_forward;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;

    if (tag == "sweep") {
      CHRONOS_EXPECTS(!have_header, "duplicate sweep header");
      std::size_t n = 0;
      ls >> n >> sweep.sweep_duration_s;
      CHRONOS_EXPECTS(!ls.fail() && n > 0, "bad sweep header");
      CHRONOS_EXPECTS(n <= kMaxBands, "sweep header declares too many bands");
      CHRONOS_EXPECTS(std::isfinite(sweep.sweep_duration_s) &&
                          sweep.sweep_duration_s > 0.0,
                      "sweep duration must be finite and positive");
      std::string extra;
      CHRONOS_EXPECTS(!(ls >> extra), "trailing garbage in sweep header");
      sweep.bands.resize(n);
      bands.resize(n);
      pending_forward.resize(n);
      have_header = true;
    } else if (tag == "band") {
      CHRONOS_EXPECTS(have_header, "band record before sweep header");
      std::size_t idx = 0;
      int channel = 0;
      ls >> idx >> channel;
      CHRONOS_EXPECTS(!ls.fail() && idx < bands.size(), "bad band record");
      std::string extra;
      CHRONOS_EXPECTS(!(ls >> extra), "trailing garbage in band record");
      bands[idx] = band_by_channel(channel);
    } else if (tag == "capture") {
      CHRONOS_EXPECTS(have_header, "capture record before sweep header");
      std::size_t bi = 0;
      char dir = 'f';
      CsiMeasurement m;
      ls >> bi >> dir >> m.timestamp_s >> m.snr_db;
      CHRONOS_EXPECTS(!ls.fail() && bi < bands.size(), "bad capture record");
      CHRONOS_EXPECTS(dir == 'f' || dir == 'r',
                      "capture direction must be 'f' or 'r'");
      CHRONOS_EXPECTS(std::isfinite(m.timestamp_s) && std::isfinite(m.snr_db),
                      "capture timestamp/SNR must be finite");
      m.band = bands[bi];
      m.direction = dir == 'f' ? Direction::kForward : Direction::kReverse;
      m.values.reserve(intel5300_subcarrier_indices().size());
      double re = 0.0, im = 0.0;
      while (ls >> re) {
        CHRONOS_EXPECTS(!(ls >> im).fail(),
                        "capture has an odd or malformed CSI component");
        CHRONOS_EXPECTS(std::isfinite(re) && std::isfinite(im),
                        "CSI values must be finite");
        m.values.emplace_back(re, im);
        CHRONOS_EXPECTS(
            m.values.size() <= intel5300_subcarrier_indices().size(),
            "capture carries more than 30 subcarrier values");
      }
      // The loop must have stopped at end-of-line, not on a token that
      // failed to parse as a number (trailing garbage).
      CHRONOS_EXPECTS(ls.eof(), "trailing garbage in capture record");
      CHRONOS_EXPECTS(
          m.values.size() == intel5300_subcarrier_indices().size(),
          "capture must carry 30 subcarrier values");

      if (m.direction == Direction::kForward) {
        CHRONOS_EXPECTS(pending_forward[bi].values.empty(),
                        "two forward captures without a reverse between them");
        pending_forward[bi] = std::move(m);
      } else {
        CHRONOS_EXPECTS(!pending_forward[bi].values.empty(),
                        "reverse capture without a forward partner");
        sweep.bands[bi].push_back(
            {std::move(pending_forward[bi]), std::move(m)});
        pending_forward[bi] = CsiMeasurement{};
      }
    } else {
      CHRONOS_EXPECTS(false, "unknown record tag in CSI trace");
    }
  }
  CHRONOS_EXPECTS(have_header, "stream contains no sweep header");
  for (const auto& pending : pending_forward) {
    CHRONOS_EXPECTS(pending.values.empty(),
                    "forward capture without a reverse partner at end of stream");
  }
  validate(sweep);
  return sweep;
}

void save_sweep(const std::string& path, const SweepMeasurement& sweep) {
  std::ofstream os(path);
  CHRONOS_EXPECTS(os.good(), "cannot open file for writing: " + path);
  write_sweep(os, sweep);
  CHRONOS_EXPECTS(os.good(), "write failed: " + path);
}

SweepMeasurement load_sweep(const std::string& path) {
  std::ifstream is(path);
  CHRONOS_EXPECTS(is.good(), "cannot open file for reading: " + path);
  return read_sweep(is);
}

}  // namespace chronos::phy
