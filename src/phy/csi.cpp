#include "phy/csi.hpp"

#include <array>

#include "mathx/contracts.hpp"

namespace chronos::phy {

namespace {
// 802.11n Ng=2 grouping as reported by the Intel 5300 for HT20.
constexpr std::array<int, 30> kIndices = {
    -28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
    1,   3,   5,   7,   9,   11,  13,  15,  17,  19,  21, 23, 25, 27, 28};
constexpr double kSubcarrierSpacingHz = 312.5e3;
}  // namespace

std::span<const int> intel5300_subcarrier_indices() { return kIndices; }

double subcarrier_offset_hz(int index) {
  return static_cast<double>(index) * kSubcarrierSpacingHz;
}

double CsiMeasurement::frequency_at(std::size_t k) const {
  CHRONOS_EXPECTS(k < values.size(), "subcarrier index out of range");
  return band.center_freq_hz + subcarrier_offset_hz(kIndices[k]);
}

void validate(const SweepMeasurement& sweep) {
  CHRONOS_EXPECTS(!sweep.bands.empty(), "sweep contains no bands");
  for (const auto& captures : sweep.bands) {
    CHRONOS_EXPECTS(!captures.empty(), "band capture list is empty");
    for (const auto& cap : captures) {
      CHRONOS_EXPECTS(cap.forward.values.size() == kIndices.size(),
                      "forward CSI must cover 30 subcarriers");
      CHRONOS_EXPECTS(cap.reverse.values.size() == kIndices.size(),
                      "reverse CSI must cover 30 subcarriers");
      CHRONOS_EXPECTS(cap.forward.direction == Direction::kForward,
                      "forward capture mislabelled");
      CHRONOS_EXPECTS(cap.reverse.direction == Direction::kReverse,
                      "reverse capture mislabelled");
      CHRONOS_EXPECTS(
          cap.forward.band.channel == cap.reverse.band.channel,
          "forward/reverse captures must be on the same band");
    }
  }
}

}  // namespace chronos::phy
