#include "phy/ofdm.hpp"

#include <cmath>

#include "mathx/contracts.hpp"
#include "mathx/fft.hpp"

namespace chronos::phy {

namespace {
constexpr std::size_t kFft = 64;
constexpr std::size_t kDcIndex = 32;  // entry 32 holds subcarrier 0

// Maps subcarrier index (-32..31) to array position.
std::size_t sc_pos(int k) { return static_cast<std::size_t>(k + 32); }
}  // namespace

std::vector<std::complex<double>> lstf_frequency_domain() {
  // 802.11-2012 Table 18-6: S_{-26..26} populated at +-{4,8,12,16,20,24}
  // with values scaled by sqrt(13/6).
  std::vector<std::complex<double>> s(kFft, {0.0, 0.0});
  const double scale = std::sqrt(13.0 / 6.0);
  const std::complex<double> pp{1.0, 1.0};   // (1 + j)
  const std::complex<double> nn{-1.0, -1.0}; // (-1 - j)
  s[sc_pos(-24)] = scale * pp;
  s[sc_pos(-20)] = scale * nn;
  s[sc_pos(-16)] = scale * pp;
  s[sc_pos(-12)] = scale * nn;
  s[sc_pos(-8)] = scale * nn;
  s[sc_pos(-4)] = scale * pp;
  s[sc_pos(4)] = scale * nn;
  s[sc_pos(8)] = scale * nn;
  s[sc_pos(12)] = scale * pp;
  s[sc_pos(16)] = scale * pp;
  s[sc_pos(20)] = scale * pp;
  s[sc_pos(24)] = scale * pp;
  return s;
}

std::vector<std::complex<double>> lltf_frequency_domain() {
  // 802.11-2012 Table 18-7, L-LTF BPSK sequence over subcarriers -26..26.
  static const int seq[53] = {
      1, 1, -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
      1, -1, 1, -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1,  -1, 1,
      -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};
  std::vector<std::complex<double>> s(kFft, {0.0, 0.0});
  for (int k = -26; k <= 26; ++k) {
    s[sc_pos(k)] = {static_cast<double>(seq[k + 26]), 0.0};
  }
  s[kDcIndex] = {0.0, 0.0};  // DC carries no energy
  return s;
}

namespace {

// IFFT with the 802.11 subcarrier layout: array index k holds subcarrier
// k-32; the IFFT expects subcarrier 0 first, positives, then negatives.
std::vector<std::complex<double>> ifft_centered(
    std::span<const std::complex<double>> centered) {
  CHRONOS_EXPECTS(centered.size() == kFft, "expected 64-entry spectrum");
  std::vector<std::complex<double>> shifted(kFft);
  for (std::size_t i = 0; i < kFft; ++i) {
    shifted[i] = centered[(i + kDcIndex) % kFft];
  }
  auto time = mathx::ifft(shifted);
  return time;
}

std::vector<std::complex<double>> fft_centered(
    std::span<const std::complex<double>> time) {
  CHRONOS_EXPECTS(time.size() == kFft, "expected 64 time samples");
  auto spec = mathx::fft(time);
  std::vector<std::complex<double>> centered(kFft);
  for (std::size_t i = 0; i < kFft; ++i) {
    centered[(i + kDcIndex) % kFft] = spec[i];
  }
  return centered;
}

}  // namespace

std::vector<std::complex<double>> lstf_time_domain() {
  auto freq = lstf_frequency_domain();
  auto base = ifft_centered(freq);  // 64 samples; inherently 16-periodic
  // The standard L-STF spans 160 samples (10 repetitions of the 16-sample
  // pattern = 2.5 base symbols).
  std::vector<std::complex<double>> out;
  out.reserve(160);
  for (std::size_t i = 0; i < 160; ++i) out.push_back(base[i % kFft]);
  return out;
}

std::vector<std::complex<double>> ofdm_modulate(
    std::span<const std::complex<double>> freq_domain,
    const OfdmParams& params) {
  CHRONOS_EXPECTS(freq_domain.size() == params.fft_size,
                  "spectrum size must equal fft size");
  auto body = ifft_centered(freq_domain);
  std::vector<std::complex<double>> symbol;
  symbol.reserve(params.cyclic_prefix + params.fft_size);
  for (std::size_t i = 0; i < params.cyclic_prefix; ++i) {
    symbol.push_back(body[params.fft_size - params.cyclic_prefix + i]);
  }
  symbol.insert(symbol.end(), body.begin(), body.end());
  return symbol;
}

std::vector<std::complex<double>> ofdm_demodulate(
    std::span<const std::complex<double>> symbol, const OfdmParams& params) {
  CHRONOS_EXPECTS(symbol.size() == params.cyclic_prefix + params.fft_size,
                  "symbol must contain cp + fft samples");
  std::vector<std::complex<double>> body(symbol.begin() + params.cyclic_prefix,
                                         symbol.end());
  return fft_centered(body);
}

std::optional<std::size_t> PacketDetector::detect(
    std::span<const std::complex<double>> samples) const {
  CHRONOS_EXPECTS(window > 0, "detector window must be positive");
  if (samples.size() < 2 * window) return std::nullopt;

  // Running energies of the trailing [i-window, i) and leading [i, i+window)
  // windows; a packet edge makes the leading/trailing ratio spike.
  double trailing = 0.0;
  double leading = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    trailing += std::norm(samples[i]);
    leading += std::norm(samples[i + window]);
  }
  for (std::size_t i = window; i + window < samples.size(); ++i) {
    constexpr double kFloor = 1e-15;  // avoid division by true zero
    if (leading / (trailing + kFloor) >= threshold_ratio) {
      return i;
    }
    trailing += std::norm(samples[i]) - std::norm(samples[i - window]);
    leading += std::norm(samples[i + window]) - std::norm(samples[i]);
  }
  return std::nullopt;
}

}  // namespace chronos::phy
