// The US Wi-Fi band plan (paper Fig. 2).
//
// Chronos stitches channel measurements across every 20 MHz 802.11n band the
// Intel 5300 can tune to: 11 channels at 2.4 GHz and 24 at 5 GHz (UNII-1/2,
// the 802.11h DFS range, and UNII-3) — 35 bands with distinct center
// frequencies spanning 2.412–5.825 GHz. The wide, unequal spacing is what
// gives the band-stitched "virtual wideband radio" its sub-nanosecond
// resolution and a Chinese-Remainder-style unambiguous range of ~60 m.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace chronos::phy {

/// Regulatory grouping of a 20 MHz Wi-Fi channel.
enum class BandGroup {
  k2_4GHz,     ///< 2.412–2.462 GHz, channels 1–11
  k5GHzUnii1,  ///< 5.18–5.24 GHz, channels 36–48
  k5GHzUnii2,  ///< 5.26–5.32 GHz, channels 52–64
  k5GHzDfs,    ///< 5.50–5.70 GHz, channels 100–140 (802.11h DFS)
  k5GHzUnii3,  ///< 5.745–5.825 GHz, channels 149–165
};

/// One 20 MHz Wi-Fi band.
struct WifiBand {
  int channel = 0;              ///< 802.11 channel number
  double center_freq_hz = 0.0;  ///< center (zero-subcarrier) frequency
  BandGroup group = BandGroup::k2_4GHz;

  bool is_2_4ghz() const { return group == BandGroup::k2_4GHz; }
};

/// The full 35-band US plan, ordered by center frequency.
const std::vector<WifiBand>& us_band_plan();

/// Subset helpers used by benches and the band-count ablation.
std::vector<WifiBand> bands_2_4ghz();
std::vector<WifiBand> bands_5ghz();

/// Looks up a band by channel number; throws std::invalid_argument for
/// channels outside the US plan.
const WifiBand& band_by_channel(int channel);

/// Human-readable band group label ("2.4 GHz", "5 GHz DFS", ...).
std::string to_string(BandGroup group);

/// Total frequency span covered (max center - min center), the paper's
/// "almost one GHz of bandwidth" combined aperture (3.413 GHz edge-to-edge
/// including the 2.4/5 GHz gap).
double total_span_hz(std::span<const WifiBand> bands);

/// The unambiguous time-of-flight range achieved by stitching the given
/// bands: the least common multiple of the periods 1/f_i, computed on a
/// rational representation of the center frequencies (all US centers are
/// integer multiples of 5 MHz). Returned in seconds.
double unambiguous_range_s(std::span<const WifiBand> bands);

}  // namespace chronos::phy
