#include "phy/band_plan.hpp"

#include <numeric>

#include "mathx/contracts.hpp"

namespace chronos::phy {

namespace {

std::vector<WifiBand> build_plan() {
  std::vector<WifiBand> plan;
  // 2.4 GHz: channels 1..11, centers 2412 + 5*(ch-1) MHz.
  for (int ch = 1; ch <= 11; ++ch) {
    plan.push_back({ch, (2412.0 + 5.0 * (ch - 1)) * 1e6, BandGroup::k2_4GHz});
  }
  // 5 GHz: center = 5000 + 5*ch MHz.
  auto add5 = [&plan](int ch, BandGroup g) {
    plan.push_back({ch, (5000.0 + 5.0 * ch) * 1e6, g});
  };
  for (int ch = 36; ch <= 48; ch += 4) add5(ch, BandGroup::k5GHzUnii1);
  for (int ch = 52; ch <= 64; ch += 4) add5(ch, BandGroup::k5GHzUnii2);
  for (int ch = 100; ch <= 140; ch += 4) add5(ch, BandGroup::k5GHzDfs);
  for (int ch = 149; ch <= 165; ch += 4) add5(ch, BandGroup::k5GHzUnii3);
  return plan;
}

}  // namespace

const std::vector<WifiBand>& us_band_plan() {
  static const std::vector<WifiBand> plan = build_plan();
  return plan;
}

std::vector<WifiBand> bands_2_4ghz() {
  std::vector<WifiBand> out;
  for (const auto& b : us_band_plan())
    if (b.is_2_4ghz()) out.push_back(b);
  return out;
}

std::vector<WifiBand> bands_5ghz() {
  std::vector<WifiBand> out;
  for (const auto& b : us_band_plan())
    if (!b.is_2_4ghz()) out.push_back(b);
  return out;
}

const WifiBand& band_by_channel(int channel) {
  for (const auto& b : us_band_plan())
    if (b.channel == channel) return b;
  CHRONOS_EXPECTS(false, "channel not in the US band plan");
  // Unreachable; CHRONOS_EXPECTS throws.
  return us_band_plan().front();
}

std::string to_string(BandGroup group) {
  switch (group) {
    case BandGroup::k2_4GHz:
      return "2.4 GHz";
    case BandGroup::k5GHzUnii1:
      return "5 GHz UNII-1";
    case BandGroup::k5GHzUnii2:
      return "5 GHz UNII-2";
    case BandGroup::k5GHzDfs:
      return "5 GHz DFS";
    case BandGroup::k5GHzUnii3:
      return "5 GHz UNII-3";
  }
  return "unknown";
}

double total_span_hz(std::span<const WifiBand> bands) {
  CHRONOS_EXPECTS(!bands.empty(), "band list is empty");
  double lo = bands.front().center_freq_hz;
  double hi = lo;
  for (const auto& b : bands) {
    lo = std::min(lo, b.center_freq_hz);
    hi = std::max(hi, b.center_freq_hz);
  }
  return hi - lo;
}

double unambiguous_range_s(std::span<const WifiBand> bands) {
  CHRONOS_EXPECTS(!bands.empty(), "band list is empty");
  // All US center frequencies are integer multiples of 1 MHz: f_i = 1e6 * k_i.
  // The periods are 1/f_i = 1/(1e6 * k_i); their least common multiple is
  // lcm(1/k_i) / 1e6 = (1 / gcd(k_i)) / 1e6. For the 2.4 GHz channels
  // (2412, 2417, ... MHz) the gcd is 1 MHz, giving a 1 us ambiguity — even
  // larger than the ~200 ns the paper quotes for its 5 MHz approximation.
  long long g = 0;
  for (const auto& b : bands) {
    const auto k = static_cast<long long>(b.center_freq_hz / 1e6 + 0.5);
    g = std::gcd(g, k);
  }
  CHRONOS_ENSURES(g > 0, "gcd of band multiples must be positive");
  return 1.0 / (1e6 * static_cast<double>(g));
}

}  // namespace chronos::phy
