// Channel State Information containers and the Intel 5300 subcarrier layout.
//
// The 802.11n CSI feedback the Intel 5300 exposes (via the Linux CSI Tool the
// paper builds on) reports the complex channel on 30 grouped subcarriers per
// 20 MHz band. Chronos's pipeline consumes exactly this: a CsiMeasurement per
// (band, direction, packet).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "phy/band_plan.hpp"

namespace chronos::phy {

/// Direction of the measurement within Chronos's two-way exchange (§7):
/// kForward  = CSI of the initiator's packet, measured at the responder;
/// kReverse  = CSI of the responder's ACK, measured at the initiator.
enum class Direction { kForward, kReverse };

/// The 30 subcarrier indices (of the 56 populated HT20 subcarriers) that the
/// Intel 5300 reports with 802.11n grouping Ng=2:
/// -28,-26,...,-2,-1, 1,3,...,27,28.
std::span<const int> intel5300_subcarrier_indices();

/// Frequency offset of subcarrier `index` from the band center.
double subcarrier_offset_hz(int index);

/// One CSI snapshot: the complex channel on the 30 reported subcarriers of
/// one band, for one packet, in one direction.
struct CsiMeasurement {
  WifiBand band;
  Direction direction = Direction::kForward;
  double timestamp_s = 0.0;  ///< when the packet was captured
  double snr_db = 30.0;      ///< post-processing SNR estimate for this packet
  std::vector<std::complex<double>> values;  ///< size 30, subcarrier order

  /// Absolute frequency of the k-th reported subcarrier.
  double frequency_at(std::size_t k) const;
};

/// All CSI collected in one full sweep of the band plan: for each band, one
/// or more forward/reverse measurement pairs.
struct SweepMeasurement {
  struct BandCapture {
    CsiMeasurement forward;
    CsiMeasurement reverse;
  };
  /// Per band: the captured packet exchanges (>= 1, more when the protocol
  /// retransmits; the pipeline averages them).
  std::vector<std::vector<BandCapture>> bands;
  double sweep_duration_s = 0.0;

  std::size_t band_count() const { return bands.size(); }
};

/// Validates structural invariants (30 values per measurement, matching
/// bands within a capture); throws on violation. Called by the pipeline at
/// its trust boundary before touching the numbers.
void validate(const SweepMeasurement& sweep);

}  // namespace chronos::phy
