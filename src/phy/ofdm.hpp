// 802.11n HT20 OFDM parameters, legacy preamble synthesis, and a
// sample-level packet detector.
//
// Chronos's algorithms consume frequency-domain CSI, but two of the paper's
// claims live at the OFDM sample level: (i) packet detection happens in
// baseband *after* carrier removal, which is why detection delay rotates
// subcarrier k by -2*pi*(f_k - f_0)*delta while leaving subcarrier 0 alone
// (§5); and (ii) the detection instant itself is energy-triggered and
// SNR-dependent (§12.1, Fig 7c). This module provides the sample-level
// substrate used to validate the analytic DetectionModel.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace chronos::phy {

/// Fixed 20 MHz 802.11 OFDM numerology.
struct OfdmParams {
  std::size_t fft_size = 64;
  std::size_t cyclic_prefix = 16;
  double subcarrier_spacing_hz = 312.5e3;
  double sample_rate_hz = 20e6;

  double sample_period_s() const { return 1.0 / sample_rate_hz; }
  double symbol_duration_s() const {
    return static_cast<double>(fft_size + cyclic_prefix) / sample_rate_hz;
  }
};

/// Frequency-domain legacy short training field (L-STF): the 12 populated
/// subcarriers (+-4, +-8, ..., +-24) of the 802.11 standard, indexed by
/// subcarrier -32..31 mapped onto a 64-entry array (entry 32 = DC... entry
/// k holds subcarrier k-32).
std::vector<std::complex<double>> lstf_frequency_domain();

/// Time-domain L-STF: ten repetitions of a 16-sample pattern (160 samples),
/// generated from the frequency-domain sequence by IFFT.
std::vector<std::complex<double>> lstf_time_domain();

/// Frequency-domain legacy long training field (L-LTF) sequence over
/// subcarriers -26..26 (BPSK +-1, zero at DC), 64-entry array as above.
std::vector<std::complex<double>> lltf_frequency_domain();

/// Builds one OFDM symbol (CP + IFFT output) from a 64-entry frequency
/// domain vector.
std::vector<std::complex<double>> ofdm_modulate(
    std::span<const std::complex<double>> freq_domain,
    const OfdmParams& params = {});

/// Recovers the 64-entry frequency-domain vector from one OFDM symbol
/// (strips CP, FFT). `symbol` must contain cp + fft samples.
std::vector<std::complex<double>> ofdm_demodulate(
    std::span<const std::complex<double>> symbol,
    const OfdmParams& params = {});

/// Classic double-sliding-window energy detector: ratio of energy in two
/// adjacent windows crossing `threshold_ratio` marks the packet edge.
/// Returns the index of the first sample of the detected packet, or nullopt
/// if no edge crosses the threshold.
struct PacketDetector {
  std::size_t window = 16;
  double threshold_ratio = 4.0;  ///< leading/trailing energy ratio

  std::optional<std::size_t> detect(
      std::span<const std::complex<double>> samples) const;
};

}  // namespace chronos::phy
