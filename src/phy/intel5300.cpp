#include "phy/intel5300.hpp"

#include <cmath>

#include "mathx/constants.hpp"

namespace chronos::phy {

std::complex<double> apply_phase_quirk(std::complex<double> h,
                                       const WifiBand& band) {
  if (!band.is_2_4ghz()) return h;
  const double mag = std::abs(h);
  double phase = std::arg(h);  // (-pi, pi]
  constexpr double kQuarter = mathx::kPi / 2.0;
  phase = std::fmod(phase, kQuarter);
  if (phase < 0.0) phase += kQuarter;  // fold into [0, pi/2)
  return std::polar(mag, phase);
}

int per_direction_exponent(const WifiBand& band) {
  return band.is_2_4ghz() ? 4 : 1;
}

}  // namespace chronos::phy
