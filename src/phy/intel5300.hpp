// Intel 5300 quirk model.
//
// The paper's implementation notes (§11, footnote 5) that the Intel 5300
// firmware reports the channel phase modulo pi/2 (instead of modulo 2*pi) on
// the 2.4 GHz bands. Chronos neutralises the quirk by running its algorithm
// on h^4 at 2.4 GHz — raising to the fourth power maps all four phase
// ambiguities onto the same value. This module models the quirk (for the
// simulator) and centralises the per-band combining exponent logic (for the
// pipeline).
#pragma once

#include <complex>

#include "phy/band_plan.hpp"

namespace chronos::phy {

/// Applies the 2.4 GHz firmware phase fold to a single CSI value: the
/// reported phase is the true phase modulo pi/2 (magnitude is unaffected).
/// 5 GHz values pass through unchanged.
std::complex<double> apply_phase_quirk(std::complex<double> h,
                                       const WifiBand& band);

/// The power to which each *direction's* zero-subcarrier value is raised
/// before the two-way product (paper §7 + §11 footnote 5):
///   5 GHz:   1 — combined channel h_fwd * h_rev has its first peak at 2*tau;
///   2.4 GHz: 4 — raising each direction to the 4th power erases the
///            quadrant (pi/2) reporting ambiguity; the combined value is h^8
///            and its NDFT row spins at 4*f on the 2*tau axis.
int per_direction_exponent(const WifiBand& band);

}  // namespace chronos::phy
