// Analytic packet-detection-delay model (paper §5, §12.1, Fig 7c).
//
// A Wi-Fi receiver declares a packet present only after the preamble's
// energy crosses a threshold in baseband. The resulting delay is (a) two
// orders of magnitude larger than indoor time-of-flight (median 177 ns vs.
// ~20 ns), (b) SNR-dependent, and (c) noisy across packets (sigma ~25 ns).
// The model here decomposes the delay into a fixed pipeline latency, an
// energy-accumulation term inversely proportional to SNR, and AGC/noise
// jitter; its parameters are calibrated so the simulated population matches
// the paper's reported median and spread.
#pragma once

#include "mathx/rng.hpp"

namespace chronos::phy {

struct DetectionModelParams {
  /// Fixed baseband pipeline latency (filters, AGC settle, correlator lag).
  double pipeline_delay_s = 120e-9;
  /// Energy-accumulation constant: crossing takes threshold/snr_linear
  /// sample periods at 20 MHz (50 ns each).
  double threshold_snr_samples = 60.0;
  /// Rayleigh-distributed jitter scale from noise riding on the energy
  /// detector and AGC gain steps.
  double jitter_sigma_s = 20e-9;
};

/// Draws per-packet detection delays.
class DetectionModel {
 public:
  explicit DetectionModel(DetectionModelParams params = {})
      : params_(params) {}

  /// Samples the detection delay of one packet received at the given SNR.
  double sample_delay_s(double snr_db, mathx::Rng& rng) const;

  /// The deterministic (mean) part of the delay at a given SNR; used by
  /// tests to separate systematic from random components.
  double expected_delay_s(double snr_db) const;

  const DetectionModelParams& params() const { return params_; }

 private:
  DetectionModelParams params_;
};

}  // namespace chronos::phy
