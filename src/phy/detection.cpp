#include "phy/detection.hpp"

#include <cmath>

#include "mathx/constants.hpp"
#include "mathx/contracts.hpp"

namespace chronos::phy {

namespace {
constexpr double kSamplePeriodS = 50e-9;  // 20 MHz baseband

double snr_linear(double snr_db) { return std::pow(10.0, snr_db / 10.0); }

// Rayleigh sample via inverse CDF from a uniform draw.
double rayleigh(double sigma, mathx::Rng& rng) {
  const double u = rng.uniform(1e-12, 1.0);
  return sigma * std::sqrt(-2.0 * std::log(u));
}
}  // namespace

double DetectionModel::expected_delay_s(double snr_db) const {
  const double crossing =
      kSamplePeriodS * params_.threshold_snr_samples / snr_linear(snr_db);
  // Mean of Rayleigh(sigma) is sigma*sqrt(pi/2).
  const double jitter_mean =
      params_.jitter_sigma_s * std::sqrt(mathx::kPi / 2.0);
  return params_.pipeline_delay_s + crossing + jitter_mean;
}

double DetectionModel::sample_delay_s(double snr_db, mathx::Rng& rng) const {
  CHRONOS_EXPECTS(snr_db > -20.0 && snr_db < 80.0,
                  "snr outside plausible range");
  const double crossing =
      kSamplePeriodS * params_.threshold_snr_samples / snr_linear(snr_db);
  const double jitter = rayleigh(params_.jitter_sigma_s, rng);
  return params_.pipeline_delay_s + crossing + jitter;
}

}  // namespace chronos::phy
